//! Max-min fair flow allocation — the alternative TE objective the paper's
//! §2 cites ("max-min fairness [15, 16]").
//!
//! Progressive filling over the `FeasibleFlow` polytope: raise every
//! unfrozen demand's allocation uniformly until some can no longer grow;
//! freeze those at their level; repeat. Saturation is detected exactly by
//! re-solving a per-demand "can it exceed the level?" LP, which is robust
//! (if slow for huge instances — ours are workshop-scale).

use crate::flow::edge_incidence;
use crate::instance::TeInstance;
use crate::{TeError, TeResult};
use metaopt_lp::{LpProblem, RowSense, Simplex, SolveStatus, VarId, INF};

/// Result of the max-min fair allocation.
#[derive(Debug, Clone)]
pub struct MaxMinOutcome {
    /// Final allocation per pair (`f_k`).
    pub rates: Vec<f64>,
    /// Total carried flow (for comparison with `OptMaxFlow`; max-min
    /// typically carries less total than the total-flow optimum).
    pub total_flow: f64,
    /// Progressive-filling rounds executed.
    pub rounds: usize,
}

/// Builds the base LP: flow variables per (pair, path) with demand and
/// capacity rows; returns (lp, grid, demand_row_ids).
fn base_lp(inst: &TeInstance, demands: &[f64]) -> TeResult<(LpProblem, Vec<Vec<VarId>>)> {
    let mut lp = LpProblem::new();
    let mut grid = Vec::with_capacity(inst.n_pairs());
    for paths in inst.paths.iter() {
        let vars: Vec<VarId> = (0..paths.len())
            .map(|_| lp.add_var(0.0, INF, 0.0))
            .collect::<Result<_, _>>()?;
        grid.push(vars);
    }
    for (k, vars) in grid.iter().enumerate() {
        lp.add_row(
            RowSense::Le,
            demands[k].max(0.0),
            vars.iter().map(|&v| (v, 1.0)),
        )?;
    }
    for (e, users) in edge_incidence(inst).into_iter().enumerate() {
        if users.is_empty() {
            continue;
        }
        lp.add_row(
            RowSense::Le,
            inst.topo.capacity(metaopt_topology::EdgeId(e)),
            users.into_iter().map(|(k, p)| (grid[k][p], 1.0)),
        )?;
    }
    Ok((lp, grid))
}

/// Computes the max-min fair allocation for concrete demands.
pub fn max_min_fair(inst: &TeInstance, demands: &[f64]) -> TeResult<MaxMinOutcome> {
    inst.check_demands(demands)?;
    let n = inst.n_pairs();
    let mut frozen: Vec<Option<f64>> = demands
        .iter()
        .map(|&d| if d <= 0.0 { Some(0.0) } else { None })
        .collect();
    let mut rounds = 0usize;

    while frozen.iter().any(Option::is_none) {
        rounds += 1;
        if rounds > n + 1 {
            return Err(TeError::Model(
                "progressive filling failed to converge".into(),
            ));
        }
        // Phase A: maximize the common level t for unfrozen demands.
        // Variables: flows + t. Constraints: f_k >= t (unfrozen, t <= d_k
        // enforced via t <= min d over unfrozen? No — t is common; each
        // unfrozen k needs f_k >= min(t, d_k). To stay linear we cap t by
        // the smallest unfrozen demand and freeze any demand reaching its
        // volume at the end of the round.)
        let (mut lp, grid) = base_lp(inst, demands)?;
        let t_cap = frozen
            .iter()
            .zip(demands)
            .filter(|(f, _)| f.is_none())
            .map(|(_, &d)| d)
            .fold(INF, f64::min);
        let t = lp.add_var(0.0, t_cap, -1.0)?; // maximize t
        for k in 0..n {
            match frozen[k] {
                Some(level) => {
                    // Frozen: allocation pinned to its level.
                    lp.add_row(
                        RowSense::Eq,
                        level,
                        grid[k].iter().map(|&v| (v, 1.0)),
                    )?;
                }
                None => {
                    // Unfrozen: f_k − t >= 0.
                    lp.add_row(
                        RowSense::Ge,
                        0.0,
                        grid[k]
                            .iter()
                            .map(|&v| (v, 1.0))
                            .chain(std::iter::once((t, -1.0))),
                    )?;
                }
            }
        }
        let sol = Simplex::new(&lp).solve()?;
        if sol.status != SolveStatus::Optimal {
            return Err(TeError::Model(format!(
                "max-min level LP ended {:?}",
                sol.status
            )));
        }
        let level = sol.x[t.0];

        // Demands whose volume equals the level are trivially frozen.
        let mut froze_any = false;
        for k in 0..n {
            if frozen[k].is_none() && demands[k] <= level + 1e-9 {
                frozen[k] = Some(demands[k]);
                froze_any = true;
            }
        }

        // Phase B: find bottlenecked demands — those that cannot exceed
        // the level even when maximized individually.
        let unfrozen: Vec<usize> = (0..n).filter(|&k| frozen[k].is_none()).collect();
        for &k in &unfrozen {
            let (mut lp, grid) = base_lp(inst, demands)?;
            // Others at >= level (unfrozen) / == frozen level.
            for j in 0..n {
                if j == k {
                    continue;
                }
                match frozen[j] {
                    Some(l) => {
                        lp.add_row(RowSense::Eq, l, grid[j].iter().map(|&v| (v, 1.0)))?;
                    }
                    None => {
                        lp.add_row(
                            RowSense::Ge,
                            level,
                            grid[j].iter().map(|&v| (v, 1.0)),
                        )?;
                    }
                }
            }
            // Maximize f_k.
            for &v in &grid[k] {
                lp.set_obj(v, -1.0)?;
            }
            let sol = Simplex::new(&lp).solve()?;
            if sol.status != SolveStatus::Optimal {
                return Err(TeError::Model(format!(
                    "max-min probe LP ended {:?}",
                    sol.status
                )));
            }
            let best_k = -sol.objective;
            if best_k <= level + 1e-7 {
                frozen[k] = Some(level.min(demands[k]));
                froze_any = true;
            }
        }
        if !froze_any {
            // No demand is bottlenecked at this level: freeze the minimum
            // guaranteed level for all remaining at next iteration — this
            // only happens with numerically flat levels; freeze everything
            // at the achieved level to terminate.
            for k in 0..n {
                if frozen[k].is_none() {
                    frozen[k] = Some(level.min(demands[k]));
                }
            }
        }
    }

    let rates: Vec<f64> = frozen.into_iter().map(|f| f.unwrap_or(0.0)).collect();
    let total_flow = rates.iter().sum();
    Ok(MaxMinOutcome {
        rates,
        total_flow,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::{figure1_triangle, line, star};

    /// Single bottleneck link shared by two demands: each gets half.
    #[test]
    fn equal_split_on_shared_link() {
        let t = line(2, 10.0);
        let inst = TeInstance::with_pairs(
            t,
            vec![
                (metaopt_topology::NodeId(0), metaopt_topology::NodeId(1)),
                (metaopt_topology::NodeId(0), metaopt_topology::NodeId(1)),
            ],
            1,
        )
        .unwrap();
        let out = max_min_fair(&inst, &[100.0, 100.0]).unwrap();
        assert!((out.rates[0] - 5.0).abs() < 1e-6, "{:?}", out.rates);
        assert!((out.rates[1] - 5.0).abs() < 1e-6);
        assert!((out.total_flow - 10.0).abs() < 1e-6);
    }

    /// A small demand is satisfied fully; the big one takes the rest.
    #[test]
    fn small_demand_fully_served() {
        let t = line(2, 10.0);
        let inst = TeInstance::with_pairs(
            t,
            vec![
                (metaopt_topology::NodeId(0), metaopt_topology::NodeId(1)),
                (metaopt_topology::NodeId(0), metaopt_topology::NodeId(1)),
            ],
            1,
        )
        .unwrap();
        let out = max_min_fair(&inst, &[2.0, 100.0]).unwrap();
        assert!((out.rates[0] - 2.0).abs() < 1e-6, "{:?}", out.rates);
        assert!((out.rates[1] - 8.0).abs() < 1e-6, "{:?}", out.rates);
    }

    /// On the Figure-1 triangle, max-min keeps the two-hop demand alive
    /// (fairness) at the cost of total flow versus OptMaxFlow.
    #[test]
    fn fairness_sacrifices_total_flow() {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        let inst =
            TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
        let demands = vec![50.0, 100.0, 100.0];
        let mm = max_min_fair(&inst, &demands).unwrap();
        let opt = crate::opt::opt_max_flow(&inst, &demands).unwrap();
        // Max-min gives the 1→3 demand its fair share (50 at level 50):
        // levels: t up to 50 → edges carry t(1→3) + t(1→2) <= 100 → t = 50.
        assert!(mm.rates[0] > 1e-6, "two-hop demand starved: {:?}", mm.rates);
        assert!(mm.total_flow <= opt.total_flow + 1e-6);
        // All rates ≤ demands.
        for (r, d) in mm.rates.iter().zip(&demands) {
            assert!(*r <= d + 1e-9);
        }
    }

    /// Star: leaves share the hub independently → everyone gets their
    /// demand when capacity suffices.
    #[test]
    fn no_contention_serves_everything() {
        let inst = TeInstance::all_pairs(star(3, 100.0), 1).unwrap();
        let demands = vec![10.0; inst.n_pairs()];
        let out = max_min_fair(&inst, &demands).unwrap();
        for r in &out.rates {
            assert!((r - 10.0).abs() < 1e-6, "{:?}", out.rates);
        }
    }

    /// Zero demands are frozen at zero immediately.
    #[test]
    fn zero_demands_ignored() {
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let out = max_min_fair(&inst, &vec![0.0; inst.n_pairs()]).unwrap();
        assert_eq!(out.total_flow, 0.0);
    }

    /// Max-min dominance: the minimum allocation is as large as any other
    /// feasible allocation's minimum (spot-check vs the total-flow OPT).
    #[test]
    fn maxmin_minimum_dominates_opt_minimum() {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        let inst =
            TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
        let demands = vec![50.0, 100.0, 100.0];
        let mm = max_min_fair(&inst, &demands).unwrap();
        let opt = crate::opt::opt_max_flow(&inst, &demands).unwrap();
        let mm_min = mm
            .rates
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        let opt_min = opt
            .flows
            .iter()
            .map(|fs| fs.iter().sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        assert!(mm_min >= opt_min - 1e-6, "mm {mm_min} vs opt {opt_min}");
    }
}
