//! Shortest paths (Dijkstra) and k-shortest simple paths (Yen).
//!
//! The TE formulations of the paper route each demand over a *pre-chosen*
//! set of paths (Table 1: `P`), conventionally the k shortest; Demand
//! Pinning additionally distinguishes the single shortest path `p̂_k`
//! (Eq. 4). Ties are broken deterministically by the lexicographic node
//! sequence so results are reproducible across runs.

use crate::graph::{EdgeId, NodeId, Topology};
use crate::{TopoResult, TopologyError};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simple path: edge sequence plus cached node sequence and weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Edges in traversal order.
    pub edges: Vec<EdgeId>,
    /// Nodes in traversal order (`edges.len() + 1` entries).
    pub nodes: Vec<NodeId>,
    /// Total weight.
    pub weight: f64,
}

impl Path {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path is empty (never true for returned paths).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Whether the path uses edge `e`.
    pub fn uses_edge(&self, e: EdgeId) -> bool {
        self.edges.contains(&e)
    }
}

/// The pre-chosen paths of every demand pair: `paths[k]` lists the paths of
/// pair `k`, shortest first.
pub type PathSet = Vec<Vec<Path>>;

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance, tie-break on node index for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then(other.node.cmp(&self.node))
    }
}

/// Dijkstra from `src` to `dst`, honoring `banned` nodes/edges (for Yen's
/// spur computation). Returns `None` when disconnected.
fn dijkstra(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    banned_nodes: &[bool],
    banned_edges: &[bool],
) -> Option<Path> {
    let n = topo.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<EdgeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: src.0,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        if u == dst.0 {
            break;
        }
        for e in topo.out_edges(NodeId(u)) {
            if banned_edges.get(e.0).copied().unwrap_or(false) {
                continue;
            }
            let (_, v) = topo.endpoints(e);
            if banned_nodes.get(v.0).copied().unwrap_or(false) {
                continue;
            }
            let nd = d + topo.weight(e);
            // Strict improvement only: with a fixed edge iteration order the
            // first equal-weight predecessor wins, which is deterministic.
            if nd < dist[v.0] {
                dist[v.0] = nd;
                prev[v.0] = Some(e);
                heap.push(HeapEntry {
                    dist: nd,
                    node: v.0,
                });
            }
        }
    }
    if !dist[dst.0].is_finite() {
        return None;
    }
    // Reconstruct.
    let mut edges = Vec::new();
    let mut nodes = vec![dst];
    let mut cur = dst.0;
    while cur != src.0 {
        let e = prev[cur]?;
        edges.push(e);
        let (s, _) = topo.endpoints(e);
        cur = s.0;
        nodes.push(s);
    }
    edges.reverse();
    nodes.reverse();
    Some(Path {
        edges,
        nodes,
        weight: dist[dst.0],
    })
}

/// Single-source shortest path between two nodes.
pub fn shortest_path(topo: &Topology, src: NodeId, dst: NodeId) -> TopoResult<Path> {
    dijkstra(topo, src, dst, &[], &[]).ok_or(TopologyError::Disconnected {
        src: src.0,
        dst: dst.0,
    })
}

/// Yen's algorithm: up to `k` shortest simple paths from `src` to `dst`,
/// sorted by `(weight, lexicographic node sequence)`. Returns fewer than `k`
/// paths when the graph does not contain that many simple paths.
pub fn k_shortest_paths(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> TopoResult<Vec<Path>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let first = shortest_path(topo, src, dst)?;
    let mut result = vec![first];
    let mut candidates: Vec<Path> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("nonempty");
        // Each node of the previous path is a spur candidate.
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root_edges = &last.edges[..spur_idx];

            let mut banned_edges = vec![false; topo.n_edges()];
            let mut banned_nodes = vec![false; topo.n_nodes()];
            // Ban edges that would replicate an already-found path sharing
            // this root.
            for p in result.iter().chain(candidates.iter()) {
                if p.edges.len() > spur_idx && p.edges[..spur_idx] == *root_edges {
                    banned_edges[p.edges[spur_idx].0] = true;
                }
            }
            // Ban root nodes (except the spur node) to keep paths simple.
            for &node in &last.nodes[..spur_idx] {
                banned_nodes[node.0] = true;
            }

            if let Some(spur) = dijkstra(topo, spur_node, dst, &banned_nodes, &banned_edges) {
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let mut nodes = last.nodes[..spur_idx].to_vec();
                nodes.extend_from_slice(&spur.nodes);
                let weight = edges.iter().map(|&e| topo.weight(e)).sum();
                let cand = Path {
                    edges,
                    nodes,
                    weight,
                };
                if !candidates.contains(&cand) && !result.contains(&cand) {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pick the best candidate (weight, then lexicographic nodes).
        candidates.sort_by(|a, b| {
            a.weight
                .partial_cmp(&b.weight)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.nodes.cmp(&b.nodes))
        });
        result.push(candidates.remove(0));
    }
    Ok(result)
}

/// Builds the k-shortest [`PathSet`] for a list of demand pairs.
pub fn path_set(
    topo: &Topology,
    pairs: &[(NodeId, NodeId)],
    k: usize,
) -> TopoResult<PathSet> {
    pairs
        .iter()
        .map(|&(s, t)| k_shortest_paths(topo, s, t, k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: a → {b, c} → d plus a slow direct edge a → d.
    fn diamond() -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new("diamond");
        let ns = t.add_nodes("n", 4);
        t.add_edge(ns[0], ns[1], 1.0).unwrap();
        t.add_edge(ns[1], ns[3], 1.0).unwrap();
        t.add_edge(ns[0], ns[2], 1.0).unwrap();
        t.add_edge(ns[2], ns[3], 1.0).unwrap();
        t.add_weighted_edge(ns[0], ns[3], 1.0, 5.0).unwrap();
        (t, ns)
    }

    #[test]
    fn shortest_path_found() {
        let (t, ns) = diamond();
        let p = shortest_path(&t, ns[0], ns[3]).unwrap();
        assert_eq!(p.weight, 2.0);
        assert_eq!(p.len(), 2);
        assert_eq!(p.nodes.first(), Some(&ns[0]));
        assert_eq!(p.nodes.last(), Some(&ns[3]));
    }

    #[test]
    fn k_shortest_enumerates_all() {
        let (t, ns) = diamond();
        let ps = k_shortest_paths(&t, ns[0], ns[3], 5).unwrap();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].weight, 2.0);
        assert_eq!(ps[1].weight, 2.0);
        assert_eq!(ps[2].weight, 5.0);
        // Deterministic tie-break: via node 1 before via node 2.
        assert!(ps[0].nodes < ps[1].nodes);
        // All paths simple.
        for p in &ps {
            let mut seen = p.nodes.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), p.nodes.len());
        }
    }

    #[test]
    fn disconnected_reported() {
        let mut t = Topology::new("d");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_edge(a, b, 1.0).unwrap();
        assert!(shortest_path(&t, a, c).is_err());
        assert!(k_shortest_paths(&t, a, c, 2).is_err());
    }

    #[test]
    fn directed_edges_respected() {
        let mut t = Topology::new("d");
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_edge(a, b, 1.0).unwrap();
        assert!(shortest_path(&t, b, a).is_err());
    }

    #[test]
    fn k_zero_and_one() {
        let (t, ns) = diamond();
        assert!(k_shortest_paths(&t, ns[0], ns[3], 0).unwrap().is_empty());
        let one = k_shortest_paths(&t, ns[0], ns[3], 1).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].weight, 2.0);
    }

    #[test]
    fn path_set_for_pairs() {
        let (t, ns) = diamond();
        let pairs = vec![(ns[0], ns[3]), (ns[1], ns[3])];
        let ps = path_set(&t, &pairs, 2).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].len(), 2);
        assert_eq!(ps[1].len(), 1);
    }
}
