//! AN3xx — journal/protocol vocabulary coverage.
//!
//! The job server and the campaign runner both speak append-only journal
//! vocabularies whose writer, replayer, and test corpus live in different
//! files. Nothing in the type system ties them together — a new record
//! variant that the writer emits but replay rejects corrupts every
//! journal written after the deploy, and a variant replay accepts but no
//! test exercises is a codepath certified by nobody. These checks close
//! that loop:
//!
//! | Code  | Contract                                                     |
//! |-------|--------------------------------------------------------------|
//! | AN301 | every `JobRecord` variant is matched in `JobBook::replay`    |
//! | AN302 | every `JobRecord` variant appears in the proptest reference model (`tests/jobs_replay.rs`) |
//! | AN303 | every WAL kind the campaign runner appends is accepted by `CampaignState::replay` |
//! | AN304 | every WAL kind replay accepts is exercised by the `state.rs` test corpus |
//!
//! Unlike the ANxxx source lints these are coverage *contracts* between
//! files, so they are deliberately not suppressable with `an:allow` —
//! the fix is always to extend the lagging side, never to shrug.

use crate::lints::find_all;
use crate::scan::SourceFile;
use crate::{Diagnostic, Report, Severity, Span};

const JOBS_RS: &str = "crates/campaign/src/jobs.rs";
const STATE_RS: &str = "crates/campaign/src/state.rs";
const RUNNER_RS: &str = "crates/campaign/src/runner.rs";
const JOBS_MODEL_RS: &str = "crates/campaign/tests/jobs_replay.rs";

/// Runs the vocabulary checks. `sources` are the `src/` trees;
/// `test_sources` are the `crates/*/tests/` files (needed because the
/// jobs-journal reference model lives in an integration test).
pub fn run(sources: &[SourceFile], test_sources: &[SourceFile]) -> Report {
    let mut report = Report::new();
    let find = |rel: &str| sources.iter().find(|f| f.rel == rel);
    let find_test = |rel: &str| test_sources.iter().find(|f| f.rel == rel);

    if let Some(jobs) = find(JOBS_RS) {
        let (variants, enum_line) = enum_variants(jobs, "JobRecord");
        an301_replay_coverage(jobs, &variants, enum_line, &mut report);
        an302_model_coverage(find_test(JOBS_MODEL_RS), &variants, &mut report);
    }
    if let (Some(state), Some(runner)) = (find(STATE_RS), find(RUNNER_RS)) {
        let (accepted, replay_line) = replay_kinds(state);
        an303_writer_drift(runner, &accepted, &mut report);
        an304_corpus_coverage(state, &accepted, replay_line, &mut report);
    }
    report
}

fn vdiag(file: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        code: "AN300", // overwritten by callers
        severity: Severity::Error,
        span: Span {
            file: file.to_string(),
            line,
            col: 1,
        },
        message,
    }
}

/// Variant names of `pub enum <name>` in `f`, plus the enum's 1-based
/// declaration line (0 if not found).
pub fn enum_variants(f: &SourceFile, name: &str) -> (Vec<String>, usize) {
    let needle = format!("enum {name}");
    let Some(start) = f
        .lines
        .iter()
        .position(|l| l.code.contains(&needle) && l.code.contains('{'))
    else {
        return (Vec::new(), 0);
    };
    let mut variants = Vec::new();
    let mut depth = 0i64;
    for line in &f.lines[start..] {
        let at_line_start = depth;
        for c in line.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if at_line_start == 1 {
            let t = line.code.trim_start();
            if t.starts_with(|c: char| c.is_ascii_uppercase()) {
                let ident: String = t
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                let after = t[ident.len()..].trim_start();
                if after.starts_with('{') || after.starts_with('(') || after.starts_with(',') {
                    variants.push(ident);
                }
            }
        }
        if at_line_start >= 1 && depth == 0 {
            break;
        }
    }
    (variants, start + 1)
}

fn an301_replay_coverage(
    jobs: &SourceFile,
    variants: &[String],
    enum_line: usize,
    report: &mut Report,
) {
    let Some(replay) = jobs.functions.iter().find(|f| f.name == "replay") else {
        report.push(Diagnostic {
            code: "AN301",
            ..vdiag(
                JOBS_RS,
                enum_line,
                "no `fn replay` found in jobs.rs: the journal replay contract has moved; \
                 update the AN301 vocabulary check"
                    .into(),
            )
        });
        return;
    };
    for v in variants {
        let pat = format!("JobRecord::{v}");
        let covered = (replay.start..=replay.end)
            .any(|l| jobs.lines[l - 1].code.contains(&pat));
        if !covered {
            report.push(Diagnostic {
                code: "AN301",
                ..vdiag(
                    JOBS_RS,
                    enum_line,
                    format!(
                        "`JobRecord::{v}` is never matched in `JobBook::replay`: a journaled \
                         `{v}` record would be decoded and then silently dropped (or hit a \
                         catch-all); handle the variant explicitly"
                    ),
                )
            });
        }
    }
}

fn an302_model_coverage(
    model: Option<&SourceFile>,
    variants: &[String],
    report: &mut Report,
) {
    let Some(model) = model else {
        report.push(Diagnostic {
            code: "AN302",
            ..vdiag(
                JOBS_MODEL_RS,
                1,
                "the jobs-journal proptest reference model (tests/jobs_replay.rs) is missing; \
                 the replay contract has no executable specification"
                    .into(),
            )
        });
        return;
    };
    for v in variants {
        let pat = format!("JobRecord::{v}");
        let covered = model.lines.iter().any(|l| l.code.contains(&pat));
        if !covered {
            report.push(Diagnostic {
                code: "AN302",
                ..vdiag(
                    JOBS_MODEL_RS,
                    1,
                    format!(
                        "`JobRecord::{v}` never appears in the proptest reference model: no \
                         generated interleaving can contain it, so its replay semantics are \
                         untested; add an op that emits it and model its effect"
                    ),
                )
            });
        }
    }
}

/// The WAL kinds `CampaignState::replay` accepts, read out of its match
/// arms and `kind == "…"` comparisons, plus the replay fn's start line.
pub fn replay_kinds(state: &SourceFile) -> (Vec<String>, usize) {
    let Some(replay) = state.functions.iter().find(|f| f.name == "replay") else {
        return (Vec::new(), 0);
    };
    let mut kinds = Vec::new();
    for l in replay.start..=replay.end {
        let text = &state.lines[l - 1].text;
        for (lit, after, before) in string_literals(text) {
            let word = lit.chars().all(|c| c.is_ascii_lowercase() || c == '_');
            if lit.is_empty() || !word {
                continue;
            }
            let arm = after.trim_start().starts_with("=>") || after.trim_start().starts_with('|');
            let cmp = before.trim_end().ends_with("==");
            if (arm || cmp) && !kinds.contains(&lit) {
                kinds.push(lit);
            }
        }
    }
    (kinds, replay.start)
}

/// `(literal, text-after, text-before)` for every `"…"` on the line.
fn string_literals(text: &str) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == '"' {
            let start = i + 1;
            let mut j = start;
            while j < bytes.len() && bytes[j] != '"' {
                j += 1;
            }
            if j < bytes.len() {
                out.push((
                    bytes[start..j].iter().collect(),
                    bytes[j + 1..].iter().collect(),
                    bytes[..i].iter().collect(),
                ));
                i = j + 1;
            }
        }
        i += 1;
    }
    out
}

/// Every kind the campaign runner appends (`append(&format!("kind …`)
/// must be in the replay-accepted set.
fn an303_writer_drift(runner: &SourceFile, accepted: &[String], report: &mut Report) {
    for (line, _) in runner.code_lines() {
        let text = &runner.lines[line - 1].text;
        for col in find_all(text, "append(&format!(") {
            // The literal opens on this line or within the next two
            // (rustfmt splits long appends).
            let mut kind = None;
            'outer: for (k, probe) in (line..line + 3).enumerate() {
                let t = &runner.lines.get(probe - 1).map(|l| l.text.clone()).unwrap_or_default();
                let from = if k == 0 { col } else { 0 };
                if let Some(q) = t[from..].find('"') {
                    let lit = &t[from + q + 1..];
                    let word: String = lit
                        .chars()
                        .take_while(|c| c.is_ascii_lowercase() || *c == '_')
                        .collect();
                    if !word.is_empty() && lit[word.len()..].starts_with(' ') {
                        kind = Some((word, probe));
                    }
                    break 'outer;
                }
            }
            let Some((kind, at)) = kind else {
                continue; // header record (starts with an interpolation)
            };
            if !accepted.iter().any(|a| a == &kind) {
                report.push(Diagnostic {
                    code: "AN303",
                    ..vdiag(
                        RUNNER_RS,
                        at,
                        format!(
                            "the runner appends WAL kind `{kind}` but `CampaignState::replay` \
                             does not accept it: every journal written here becomes \
                             `Corrupt` on resume; teach replay the kind first, then ship the \
                             writer"
                        ),
                    )
                });
            }
        }
    }
}

/// Every replay-accepted kind must appear in state.rs's own test corpus
/// (a record literal starting `"<kind> `), so replay of that kind is
/// actually executed somewhere.
fn an304_corpus_coverage(
    state: &SourceFile,
    accepted: &[String],
    replay_line: usize,
    report: &mut Report,
) {
    for kind in accepted {
        let pat = format!("\"{kind} ");
        let exercised = state
            .lines
            .iter()
            .any(|l| l.in_test && l.text.contains(&pat));
        if !exercised {
            report.push(Diagnostic {
                code: "AN304",
                ..vdiag(
                    STATE_RS,
                    replay_line,
                    format!(
                        "replay accepts WAL kind `{kind}` but the state.rs test corpus never \
                         contains a `{kind}` record: its replay semantics are certified by \
                         nobody; add it to a replay test"
                    ),
                )
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_variants_are_extracted() {
        let src = "pub enum JobRecord {\n    /// doc\n    Submit {\n        id: u64,\n    },\n    Cancel { id: u64 },\n    Shutdown { reason: String },\n}\n";
        let f = SourceFile::parse("crates/campaign/src/jobs.rs", src);
        let (vs, line) = enum_variants(&f, "JobRecord");
        assert_eq!(vs, vec!["Submit", "Cancel", "Shutdown"]);
        assert_eq!(line, 1);
    }

    #[test]
    fn replay_kinds_come_from_match_arms_not_error_strings() {
        let src = "fn replay() {\n    if kind == \"shutdown\" {}\n    match kind {\n        \"cell\" => {}\n        \"sched\" | \"run\" => {}\n        other => err(\"unknown kind\"),\n    }\n    parse(body, \"attempt\");\n}\n";
        let f = SourceFile::parse("crates/campaign/src/state.rs", src);
        let (kinds, _) = replay_kinds(&f);
        assert_eq!(kinds, vec!["shutdown", "cell", "sched", "run"]);
    }

    #[test]
    fn writer_drift_fires_on_unaccepted_kind() {
        let runner = SourceFile::parse(
            "crates/campaign/src/runner.rs",
            "fn go() {\n    shared.append(&format!(\"warp {idx}\"))?;\n}\n",
        );
        let mut report = Report::new();
        an303_writer_drift(&runner, &["run".into()], &mut report);
        assert!(report.has_code("AN303"), "{}", report.summary());
    }

    #[test]
    fn multiline_append_literals_are_found() {
        let runner = SourceFile::parse(
            "crates/campaign/src/runner.rs",
            "fn go() {\n    shared.append(&format!(\n        \"fail {idx} {a}\",\n    ))?;\n}\n",
        );
        let mut report = Report::new();
        an303_writer_drift(&runner, &["run".into()], &mut report);
        assert!(report.has_code("AN303"));
        let mut clean = Report::new();
        an303_writer_drift(&runner, &["fail".into()], &mut clean);
        assert!(clean.is_clean(), "{}", clean.summary());
    }

    #[test]
    fn corpus_coverage_fires_on_unexercised_kind() {
        let src = "fn replay() {\n    match kind {\n        \"sched\" => {}\n    }\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = \"run 0 1\"; }\n}\n";
        let f = SourceFile::parse("crates/campaign/src/state.rs", src);
        let (kinds, line) = replay_kinds(&f);
        let mut report = Report::new();
        an304_corpus_coverage(&f, &kinds, line, &mut report);
        assert!(report.has_code("AN304"));
    }
}
