//! Basis snapshot/install — the warm-start handoff between branch-and-bound
//! nodes.
//!
//! A [`Basis`] records *where every variable lives* (basic position or which
//! bound it rests at) without any numerical payload: the basis inverse, the
//! variable values, and the bounds are all recomputed on install. That makes
//! a snapshot cheap to clone and share across threads, and — crucially for
//! the deterministic parallel mode — makes the re-solve started from it a
//! pure function of (problem, bound changes, snapshot), independent of
//! whichever worker's `Simplex` performs it.
//!
//! The intended lifecycle in branch-and-bound: solve the parent node's LP,
//! [`Simplex::snapshot_basis`] its optimal basis, create the two children by
//! tightening a single variable's bounds, and start each child's solve with
//! [`Simplex::resolve_from`] (in `dual.rs`) — install the parent basis, then
//! let the dual simplex repair the one freshly violated bound in a handful
//! of pivots instead of re-solving from scratch.

use super::{Simplex, VarState};
use crate::{LpError, LpResult};

/// An opaque snapshot of a simplex basis: the basic/nonbasic status of the
/// `n` structural and `m` logical variables plus the variable occupying each
/// basis position. Carries no factorization and no values, so it stays valid
/// (and cheaply cloneable/shareable) across bound changes and across solver
/// instances built from the same problem shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Location of each of the `n + m` structural/logical variables.
    pub(crate) state: Vec<VarState>,
    /// Variable index occupying each of the `m` basis positions.
    pub(crate) order: Vec<usize>,
}

impl Basis {
    /// Number of basis positions (= rows of the source problem).
    pub fn n_rows(&self) -> usize {
        self.order.len()
    }

    /// Number of variables covered (structural + logical).
    pub fn n_cols(&self) -> usize {
        self.state.len()
    }
}

impl Simplex {
    /// Snapshots the current basis, or `None` when no factorized basis
    /// exists yet or phase-I artificial variables are still basic (such a
    /// basis cannot be transplanted into a solver that has no artificial
    /// columns; callers simply cold-start instead).
    pub fn snapshot_basis(&self) -> Option<Basis> {
        let total = self.n + self.m;
        if self.basis.len() != self.m {
            return None;
        }
        if self.basis.iter().any(|&j| j >= total) {
            return None; // an artificial is basic
        }
        Some(Basis {
            state: self.state[..total].to_vec(),
            order: self.basis.clone(),
        })
    }

    /// Installs a snapshot taken from a solver of the same problem shape:
    /// adopts its basic/nonbasic assignment, snaps nonbasic variables onto
    /// the *current* bounds (which may have moved since the snapshot —
    /// that is the whole point), refactorizes, and recomputes basic values.
    ///
    /// Fails with [`LpError::BadIndex`] on a shape mismatch and with a
    /// recoverable singular-basis fault when the snapshot basis is singular
    /// for the current column data; after a failure the solver is left for
    /// a cold [`Simplex::solve`] to rebuild from scratch.
    pub fn install_basis(&mut self, b: &Basis) -> LpResult<()> {
        let total = self.n + self.m;
        if b.state.len() != total || b.order.len() != self.m {
            return Err(LpError::BadIndex(format!(
                "basis shaped {}x{} does not fit problem with {} vars / {} rows",
                b.order.len(),
                b.state.len(),
                self.n,
                self.m
            )));
        }
        for (pos, &j) in b.order.iter().enumerate() {
            if j >= total || b.state[j] != VarState::Basic(pos) {
                return Err(LpError::BadIndex(format!(
                    "basis position {pos} and state of variable {j} disagree"
                )));
            }
        }
        self.drop_artificials();
        self.state.copy_from_slice(&b.state);
        self.basis.clone_from(&b.order);
        // Nonbasic variables onto their recorded bound, with the same
        // preferred-bound fallback as a cold start when that bound is not
        // finite under the current box.
        for j in 0..total {
            match self.state[j] {
                VarState::Basic(_) => {}
                VarState::AtLower => {
                    if self.lo[j].is_finite() {
                        self.x[j] = self.lo[j];
                    } else if self.hi[j].is_finite() {
                        self.state[j] = VarState::AtUpper;
                        self.x[j] = self.hi[j];
                    } else {
                        self.state[j] = VarState::FreeZero;
                        self.x[j] = 0.0;
                    }
                }
                VarState::AtUpper => {
                    if self.hi[j].is_finite() {
                        self.x[j] = self.hi[j];
                    } else if self.lo[j].is_finite() {
                        self.state[j] = VarState::AtLower;
                        self.x[j] = self.lo[j];
                    } else {
                        self.state[j] = VarState::FreeZero;
                        self.x[j] = 0.0;
                    }
                }
                VarState::FreeZero => {
                    if self.lo[j] > 0.0 {
                        self.state[j] = VarState::AtLower;
                        self.x[j] = self.lo[j];
                    } else if self.hi[j] < 0.0 {
                        self.state[j] = VarState::AtUpper;
                        self.x[j] = self.hi[j];
                    } else {
                        self.x[j] = 0.0;
                    }
                }
            }
        }
        self.refactor()?;
        self.recompute_basics();
        self.degen_run = 0;
        Ok(())
    }
}
