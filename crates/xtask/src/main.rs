#![forbid(unsafe_code)]
//! Repo automation tasks (the cargo-xtask pattern — a plain binary crate,
//! no external dependencies, invoked as `cargo run -p xtask -- <task>`).
//!
//! Tasks:
//!
//! * `forbid-unsafe` — asserts every first-party crate root carries
//!   `#![forbid(unsafe_code)]` (vendored crates are exempt).
//! * `clippy` — runs the pedantic lint subset the repo holds itself to,
//!   with `-D warnings`.
//! * `lint` — both of the above.
//! * `analyze` — the `metaopt-analyze` correctness gates: ANxxx source
//!   lints over every first-party crate plus the exhaustive work-stealing
//!   protocol check. Deny-by-default; see `DESIGN.md` §14.
//! * `verify` — `lint` + `analyze`; the CI entry point.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// The pedantic subset: high signal-to-noise lints only; the full
/// `clippy::pedantic` group is too opinionated for a solver codebase
/// (float comparisons and index arithmetic are the domain).
const PEDANTIC: &[&str] = &[
    "clippy::cloned_instead_of_copied",
    "clippy::inefficient_to_string",
    "clippy::map_unwrap_or",
    "clippy::needless_continue",
    "clippy::redundant_closure_for_method_calls",
    "clippy::semicolon_if_nothing_returned",
    "clippy::dbg_macro",
    "clippy::todo",
];

fn workspace_root() -> PathBuf {
    // crates/xtask/Cargo.toml -> ../..
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Every first-party crate root: `src/lib.rs` of the workspace package and
/// of each `crates/*` member (binary-only members contribute `src/main.rs`).
fn crate_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src/lib.rs")];
    let crates = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates)
        .expect("crates/ directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for dir in entries {
        let lib = dir.join("src/lib.rs");
        let main = dir.join("src/main.rs");
        if lib.is_file() {
            roots.push(lib);
        } else if main.is_file() {
            roots.push(main);
        }
    }
    roots.retain(|p| p.is_file());
    roots
}

fn forbid_unsafe(root: &Path) -> Result<(), String> {
    let mut missing = Vec::new();
    for path in crate_roots(root) {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        if !text.contains("#![forbid(unsafe_code)]") {
            missing.push(path.display().to_string());
        }
    }
    if missing.is_empty() {
        println!("forbid-unsafe: ok ({} crate roots audited)", crate_roots(root).len());
        Ok(())
    } else {
        Err(format!(
            "crate roots missing #![forbid(unsafe_code)]:\n  {}",
            missing.join("\n  ")
        ))
    }
}

fn clippy(root: &Path) -> Result<(), String> {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root).args(["clippy", "--workspace", "--all-targets"]);
    // Vendored offline subsets are exempt, like for the unsafe audit.
    for vendored in ["rand", "proptest", "criterion"] {
        cmd.args(["--exclude", vendored]);
    }
    cmd.args(["--", "-D", "warnings"]);
    for lint in PEDANTIC {
        cmd.args(["-W", lint]);
    }
    println!("clippy: -D warnings + {} pedantic lints", PEDANTIC.len());
    let status = cmd.status().map_err(|e| format!("spawn cargo clippy: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err("clippy reported violations".into())
    }
}

/// The `metaopt-analyze` gates: source lints, then the exhaustive
/// protocol exploration. Both must be completely clean.
fn analyze(root: &Path) -> Result<(), String> {
    let report = metaopt_analyze::analyze_workspace(root)
        .map_err(|e| format!("analyze: reading workspace sources: {e}"))?;
    for d in report.diagnostics() {
        eprintln!("{d}");
    }
    if report.has_errors() {
        return Err(format!("analyze: source lints failed ({})", report.summary()));
    }
    println!("analyze: source lints ok ({})", report.summary());
    let lines = metaopt_analyze::protocol::gate()
        .map_err(|e| format!("analyze: protocol check failed:\n{e}"))?;
    for line in &lines {
        println!("analyze: protocol {}: {} states explored", line.name, line.states);
    }
    println!("analyze: protocol ok ({} scenarios exhaustively explored)", lines.len());
    Ok(())
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1).unwrap_or_default();
    let root = workspace_root();
    let result = match task.as_str() {
        "forbid-unsafe" => forbid_unsafe(&root),
        "clippy" => clippy(&root),
        "lint" => forbid_unsafe(&root).and_then(|()| clippy(&root)),
        "analyze" => analyze(&root),
        "verify" => forbid_unsafe(&root)
            .and_then(|()| clippy(&root))
            .and_then(|()| analyze(&root)),
        _ => Err("usage: cargo run -p xtask -- <verify|lint|analyze|forbid-unsafe|clippy>".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("xtask: {msg}");
            ExitCode::FAILURE
        }
    }
}
