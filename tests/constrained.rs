//! Integration tests of the ConstrainedSet machinery (§3.3) through the
//! public facade: goalposts, intra-input constraints, exclusion balls, and
//! their interaction with the finder's certificates.

use metaopt::core::{
    find_adversarial_gap, find_diverse_inputs, ConstrainedSet, Distance, FinderConfig,
    HeuristicSpec,
};
use metaopt::milp::MilpStatus;
use metaopt::te::TeInstance;
use metaopt::topology::gravity_demands;
use metaopt::topology::synth::figure1_triangle;

fn fig1() -> TeInstance {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

#[test]
fn absolute_goalpost_is_respected() {
    let inst = fig1();
    let reference = vec![40.0, 80.0, 80.0];
    let cs = ConstrainedSet::unconstrained().near(&reference, Distance::Absolute(10.0));
    let r = find_adversarial_gap(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: 50.0 },
        &cs,
        &FinderConfig::default(),
    )
    .unwrap();
    assert_eq!(r.status, MilpStatus::Optimal);
    for (k, (&d, &g)) in r.demands.iter().zip(&reference).enumerate() {
        assert!(
            (d - g).abs() <= 10.0 + 1e-6,
            "pair {k}: demand {d} strays from goalpost {g}"
        );
    }
    // Best achievable: d13 = 50 (within [30,50]), d12 = d23 = 90. OPT
    // carries 90 + 90 plus 10 units of 1→3 in leftover capacity = 190;
    // DP pins 50 over both hops → 50 + 50 + 50 = 150 → gap 40.
    assert!((r.model_gap - 40.0).abs() < 1e-4, "{r}");
}

#[test]
fn relative_goalpost_from_gravity_matrix() {
    let inst = fig1();
    let goal: Vec<f64> = gravity_demands(&inst.topo, &inst.pairs, 60.0)
        .iter()
        .map(|d| d.volume)
        .collect();
    let cs = ConstrainedSet::unconstrained().near(&goal, Distance::RelativeFraction(0.25));
    let r = find_adversarial_gap(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: 50.0 },
        &cs,
        &FinderConfig::default(),
    )
    .unwrap();
    assert_eq!(r.status, MilpStatus::Optimal);
    for (k, (&d, &g)) in r.demands.iter().zip(&goal).enumerate() {
        assert!(
            (d - g).abs() <= 0.25 * g + 1e-6,
            "pair {k}: {d} outside ±25% of {g}"
        );
    }
    assert!(r.certification_error() < 1e-6);
}

#[test]
fn intra_constraint_total_volume_cap() {
    use metaopt::core::LinearDemandConstraint;
    use metaopt::model::Sense;
    let inst = fig1();
    // Total demand at most 120 units.
    let cs = ConstrainedSet::unconstrained().with_linear(LinearDemandConstraint {
        coeffs: (0..3).map(|k| (k, 1.0)).collect(),
        sense: Sense::Le,
        rhs: 120.0,
    });
    let r = find_adversarial_gap(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: 50.0 },
        &cs,
        &FinderConfig::default(),
    )
    .unwrap();
    assert_eq!(r.status, MilpStatus::Optimal);
    let total: f64 = r.demands.iter().sum();
    assert!(total <= 120.0 + 1e-6, "total {total}");
    // A "sufficient condition" finding (§5): with at most 120 total units
    // on this topology the network never congests enough for pinning to
    // displace anything — the solver PROVES the worst-case gap is zero,
    // i.e. DP is safe on this constrained input space.
    assert!(r.model_gap.abs() <= 1e-5, "{r}");
}

#[test]
fn diverse_inputs_respect_exclusions_and_order() {
    let inst = fig1();
    let rs = find_diverse_inputs(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: 50.0 },
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
        3,
        15.0,
    )
    .unwrap();
    assert!(rs.len() >= 2);
    // Gaps are non-increasing (each exclusion can only shrink the optimum).
    for w in rs.windows(2) {
        assert!(
            w[0].verified_gap >= w[1].verified_gap - 1e-6,
            "{} then {}",
            w[0].verified_gap,
            w[1].verified_gap
        );
    }
    // Pairwise separation.
    for i in 0..rs.len() {
        for j in i + 1..rs.len() {
            let linf: f64 = rs[i]
                .demands
                .iter()
                .zip(&rs[j].demands)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            assert!(linf >= 15.0 - 1e-4, "inputs {i},{j} only {linf} apart");
        }
    }
}

#[test]
fn infeasible_constraint_combination_reported() {
    let inst = fig1();
    // Exclusion ball covering the entire box: no feasible input remains.
    let cs = ConstrainedSet::unconstrained()
        .with_d_max(10.0)
        .exclude(vec![5.0, 5.0, 5.0], 1000.0);
    let err = find_adversarial_gap(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: 5.0 },
        &cs,
        &FinderConfig::default(),
    );
    // Either a config error (unreachable deviation) or an Infeasible status
    // is acceptable; silently returning a "solution" is not.
    match err {
        Err(_) => {}
        Ok(r) => assert_eq!(r.status, MilpStatus::Infeasible, "{r}"),
    }
}
