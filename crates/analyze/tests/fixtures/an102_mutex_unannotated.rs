//@ rel: crates/milp/src/parallel.rs
//@ expect: AN102 6:13
use std::sync::Mutex;

struct Shared {
    frontier: Mutex<Vec<u64>>,
}
