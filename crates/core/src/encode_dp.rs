//! Encoding of the Demand Pinning heuristic (Eqs. 4–5, §3.2) with
//! *symbolic* demands.
//!
//! The paper's *or*-constraint (`d_k > T_d` **or** pin `d_k` on the
//! shortest path) is realized with one binary pin indicator `u_k` per pair:
//!
//! ```text
//!   d_k <= T + (D − T)(1 − u_k)          (u_k = 1 ⇒ d_k <= T)
//!   d_k >= (T + ε)(1 − u_k)              (u_k = 0 ⇒ d_k >= T + ε)
//! ```
//!
//! so `u_k` equals the paper's `max(M(d_k − T_d), 0)` gate (the ε-window
//! `(T, T + ε)` is excluded from the search space — a measure-zero slice at
//! the default ε). The follower LP then carries the big-M pinning rows with
//! `u_k` as outer constants:
//!
//! ```text
//!   Σ_{p ≠ p̂} f_k^p      <= D(1 − u_k)   (pinned ⇒ nothing off p̂)
//!   d_k − f_k^{p̂}        <= D(1 − u_k)   (pinned ⇒ p̂ carries all of d_k)
//! ```
//!
//! and is KKT-rewritten (the heuristic appears with a *negative* sign, so
//! its optimality must be certified). Inputs whose pinned volumes
//! oversubscribe a link make the follower LP infeasible — branch-and-bound
//! excludes them automatically, matching §5's "identifying infeasibility".

use crate::CoreResult;
use metaopt_model::{kkt, LinExpr, Model, ObjSense, Sense, VarRef};
use metaopt_te::{flow::feasible_flow_inner, FlowVars, TeInstance};

/// Artifacts of the DP encoding.
#[derive(Debug, Clone)]
pub struct DpEncoded {
    /// Follower flow variables.
    pub flows: FlowVars,
    /// `Σ f` — DP's total-flow expression.
    pub total_flow: LinExpr,
    /// Pin indicator per pair (`1` ⇒ pinned).
    pub pin_indicators: Vec<VarRef>,
}

/// Appends the DP follower for symbolic demands `d` onto `model`.
///
/// * `threshold` — the pin threshold `T_d`,
/// * `d_hi` — the demand box upper bound `D`,
/// * `epsilon` — the exclusion half-width above the threshold,
/// * `dual_bound` — bound for the KKT multipliers.
pub fn encode_dp(
    model: &mut Model,
    inst: &TeInstance,
    d: &[VarRef],
    threshold: f64,
    d_hi: f64,
    epsilon: f64,
    dual_bound: f64,
) -> CoreResult<DpEncoded> {
    assert_eq!(d.len(), inst.n_pairs());
    let t = threshold.min(d_hi);
    let d_exprs: Vec<LinExpr> = d.iter().map(|&v| LinExpr::from(v)).collect();
    let (mut inner, flows) = feasible_flow_inner(model, "dp", inst, &d_exprs)?;

    // Pin indicators with threshold linking.
    let mut pins = Vec::with_capacity(inst.n_pairs());
    for (k, &dk) in d.iter().enumerate().take(inst.n_pairs()) {
        let u = model.add_binary(format!("dp::pin[{k}]"))?;
        // d_k − T − (D − T)(1 − u) <= 0  ⇔  d_k + (D − T)·u <= D
        model.constrain_named(
            format!("dp::pin_hi[{k}]"),
            LinExpr::from(dk) + LinExpr::term(u, d_hi - t),
            Sense::Le,
            d_hi,
        )?;
        // d_k >= (T + ε)(1 − u)  ⇔  d_k + (T + ε)·u >= T + ε
        model.constrain_named(
            format!("dp::pin_lo[{k}]"),
            LinExpr::from(dk) + LinExpr::term(u, t + epsilon),
            Sense::Ge,
            t + epsilon,
        )?;
        pins.push(u);
    }

    // Follower pinning rows (u_k enters as an outer constant).
    for k in 0..inst.n_pairs() {
        let u = pins[k];
        // Σ_{p≠p̂} f_k^p <= D(1 − u)  ⇔  Σ_{p≠p̂} f + D·u − D <= 0
        if inst.paths[k].len() > 1 {
            let mut off_sp = LinExpr::zero();
            for &f in flows.per_pair[k].iter().skip(1) {
                off_sp.add_term(f, 1.0);
            }
            off_sp.add_term(u, d_hi);
            off_sp.add_constant(-d_hi);
            inner.constrain_named(format!("dp::off_sp[{k}]"), off_sp, Sense::Le)?;
        }
        // d_k − f_k^{p̂} <= D(1 − u)
        let mut on_sp = LinExpr::from(d[k]);
        on_sp.add_term(flows.per_pair[k][0], -1.0);
        on_sp.add_term(u, d_hi);
        on_sp.add_constant(-d_hi);
        inner.constrain_named(format!("dp::on_sp[{k}]"), on_sp, Sense::Le)?;
    }

    let total_flow = flows.total_flow();
    inner.set_objective(ObjSense::Max, total_flow.clone());
    kkt::append_kkt(model, &inner, dual_bound)?;

    Ok(DpEncoded {
        flows,
        total_flow,
        pin_indicators: pins,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::figure1_triangle;
    use metaopt_te::TeInstance;

    #[test]
    fn structure_counts() {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        let inst = TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
        let mut m = Model::new();
        let d: Vec<VarRef> = (0..3)
            .map(|k| m.add_var(format!("d{k}"), 0.0, 100.0).unwrap())
            .collect();
        let enc = encode_dp(&mut m, &inst, &d, 50.0, 100.0, 0.01, 1e4).unwrap();
        assert_eq!(enc.pin_indicators.len(), 3);
        // Flow vars: pair (1,3) has only the 2-hop path, pairs (1,2),(2,3)
        // one path each → 3 flow vars.
        assert_eq!(enc.flows.per_pair.iter().map(Vec::len).sum::<usize>(), 3);
        assert!(m.n_complementarities() > 0);
        // Binary pin indicators present.
        let binaries = (0..m.n_vars())
            .filter(|&i| m.var_kind(VarRef(i)) == metaopt_model::VarKind::Binary)
            .count();
        assert_eq!(binaries, 3);
    }

    #[test]
    fn threshold_clamped_to_box() {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        let inst = TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
        let mut m = Model::new();
        let d: Vec<VarRef> = (0..3)
            .map(|k| m.add_var(format!("d{k}"), 0.0, 100.0).unwrap())
            .collect();
        // Threshold above the box: everything is pinned; still builds.
        let enc = encode_dp(&mut m, &inst, &d, 500.0, 100.0, 0.01, 1e4).unwrap();
        let _ = enc;
    }
}
