#![allow(clippy::all, clippy::pedantic, clippy::nursery)] // vendored offline subset: exempt from the repo lint bar
//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its test suites use: the [`proptest!`] macro with
//! `#![proptest_config(..)]`, `name in strategy` bindings, range/tuple/
//! [`collection::vec`]/[`option::weighted`]/[`strategy::Just`] strategies,
//! `prop_map` / `prop_flat_map` combinators, and the `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its case index and seed so it
//!   can be replayed deterministically, but is not minimized;
//! * values are drawn uniformly (real proptest biases toward edge cases);
//! * `prop_assert!` panics immediately instead of returning `TestCaseError`.

pub mod test_runner {
    //! Run configuration and the deterministic test RNG.

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a case failed. API parity with real proptest's error type;
    /// in this subset bodies construct it rarely (assertions panic).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed-case error with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    /// Outcome type the [`crate::proptest!`] macro wraps bodies in, so
    /// `return Ok(())` works exactly as with real proptest.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic generator driving strategies (xoshiro256++ seeded via
    /// splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in s.iter_mut() {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Derives the per-case seed. Mixing the property name keeps sibling
    /// properties on distinct streams.
    pub fn case_seed(name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and basic combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent second-stage strategy from each value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values satisfying `pred` (bounded retries).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

    impl Strategy for std::ops::Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.start as u32, self.end as u32);
            assert!(lo < hi, "empty strategy range");
            for _ in 0..64 {
                if let Some(c) = char::from_u32(lo + rng.below((hi - lo) as u64) as u32) {
                    return c;
                }
            }
            self.start
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident . $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in the size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding `Some(inner)` with probability `p`.
    #[derive(Debug, Clone)]
    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    /// `Some` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        assert!((0.0..=1.0).contains(&p));
        Weighted { p, inner }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.p {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface test files use.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current case (panics; no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` random cases. A failing case
/// reports its case index and seed before propagating the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let __seed = $crate::test_runner::case_seed(stringify!($name), __case);
                let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // The body may `return Ok(())` / `Err(TestCaseError)` like
                // real proptest bodies do, or simply fall off the end.
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    }
                ));
                let __err: Box<dyn ::std::any::Any + Send> = match __outcome {
                    Ok(Ok(())) => continue,
                    Ok(Err(__reject)) => Box::new(format!("{__reject:?}")),
                    Err(__panic) => __panic,
                };
                eprintln!(
                    "proptest {}: case {}/{} failed (replay seed {:#018x})",
                    stringify!($name),
                    __case + 1,
                    __config.cases,
                    __seed
                );
                ::std::panic::resume_unwind(__err);
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and vecs compose.
        #[test]
        fn strategies_compose(
            x in 1.5f64..9.5,
            n in 2usize..6,
            v in crate::collection::vec((0u32..10, 0.0f64..1.0), 1..5),
            o in crate::option::weighted(0.5, 0i32..3),
        ) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((2..6).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (a, b) in &v {
                prop_assert!(*a < 10);
                prop_assert!((0.0..1.0).contains(b));
            }
            if let Some(i) = o {
                prop_assert!((0..3).contains(&i));
            }
        }
    }

    #[test]
    fn flat_map_and_just() {
        use crate::strategy::{Just, Strategy};
        let strat = (2usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0.0f64..1.0, n))
        });
        let mut rng = crate::test_runner::TestRng::from_seed(9);
        for _ in 0..50 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
        }
    }
}
