//! Hill climbing (Algorithm 1), simulated annealing, and random search.

use crate::gaussian::GaussianSampler;
use metaopt_te::{eval::gap, Heuristic, TeInstance, TeResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Hyper-parameters shared by the black-box searches. Defaults follow the
/// paper (§3.4): `σ` = 10% of link capacity, `K` = 100 patience,
/// `t₀ = 500`, `γ = 0.1`, `K_p = 100`; the restart counts `M_hc` / `M_sa`
/// are "based on the latency budget", i.e. restarts continue until
/// `time_budget` expires.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Gaussian step σ as a fraction of the largest link capacity.
    pub sigma_frac: f64,
    /// Patience: give up on a local search after this many non-improving
    /// neighbor evaluations.
    pub k_patience: usize,
    /// Initial annealing temperature.
    pub t0: f64,
    /// Temperature decay factor per epoch.
    pub gamma: f64,
    /// Iterations per temperature epoch.
    pub k_temp: usize,
    /// Total wall-clock budget across restarts.
    pub time_budget: Duration,
    /// RNG seed (searches are deterministic given the seed and budget
    /// permitting; wall-clock cutoffs introduce scheduling nondeterminism).
    pub seed: u64,
    /// Upper bound for each demand volume (defaults to the instance's
    /// largest link capacity when `None`).
    pub d_max: Option<f64>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            sigma_frac: 0.10,
            k_patience: 100,
            t0: 500.0,
            gamma: 0.1,
            k_temp: 100,
            time_budget: Duration::from_secs(10),
            seed: 0,
            d_max: None,
        }
    }
}

/// Outcome of a black-box search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Best demand vector found.
    pub best_demands: Vec<f64>,
    /// Its gap `OPT − Heuristic` (absolute flow units).
    pub best_gap: f64,
    /// Number of gap evaluations performed.
    pub evaluations: usize,
    /// Number of restarts completed.
    pub restarts: usize,
    /// `(seconds_since_start, best_gap_so_far)` at every improvement.
    pub trajectory: Vec<(f64, f64)>,
}

struct Tracker {
    start: Instant,
    best: Option<(Vec<f64>, f64)>,
    trajectory: Vec<(f64, f64)>,
    evaluations: usize,
}

impl Tracker {
    fn new() -> Self {
        Tracker {
            // an:allow(AN001): blackbox search budgets and trajectories are
            // wall-clock by definition (the paper's §4 comparison axis);
            // nothing downstream replays or certifies these timestamps.
            start: Instant::now(),
            best: None,
            trajectory: Vec::new(),
            evaluations: 0,
        }
    }

    fn observe(&mut self, demands: &[f64], g: f64) {
        self.evaluations += 1;
        let improved = self.best.as_ref().is_none_or(|(_, bg)| g > *bg);
        if improved {
            self.best = Some((demands.to_vec(), g));
            self.trajectory
                .push((self.start.elapsed().as_secs_f64(), g));
        }
    }

    fn expired(&self, budget: Duration) -> bool {
        self.start.elapsed() >= budget
    }

    fn finish(self, restarts: usize) -> SearchOutcome {
        let (best_demands, best_gap) = self.best.unwrap_or((Vec::new(), f64::NEG_INFINITY));
        SearchOutcome {
            best_demands,
            best_gap,
            evaluations: self.evaluations,
            restarts,
            trajectory: self.trajectory,
        }
    }
}

fn d_max(inst: &TeInstance, cfg: &SearchConfig) -> f64 {
    cfg.d_max.unwrap_or_else(|| inst.demand_cap())
}

fn random_demands(n: usize, hi: f64, rng: &mut impl Rng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(0.0..=hi)).collect()
}

/// Algorithm 1: hill climbing with Gaussian neighbors `max(d + z, 0)`,
/// restarted until the time budget expires.
pub fn hill_climb(
    inst: &TeInstance,
    heuristic: &Heuristic,
    cfg: &SearchConfig,
) -> TeResult<SearchOutcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hi = d_max(inst, cfg);
    let mut gauss = GaussianSampler::new(cfg.sigma_frac * inst.topo.max_capacity());
    let mut tracker = Tracker::new();
    let mut restarts = 0usize;

    'outer: loop {
        let mut d = random_demands(inst.n_pairs(), hi, &mut rng);
        let mut g = gap(inst, heuristic, &d)?;
        tracker.observe(&d, g);
        let mut k = 0usize;
        while k < cfg.k_patience {
            if tracker.expired(cfg.time_budget) {
                break 'outer;
            }
            let aux: Vec<f64> = d
                .iter()
                .map(|&x| (x + gauss.sample(&mut rng)).clamp(0.0, hi))
                .collect();
            let ga = gap(inst, heuristic, &aux)?;
            tracker.observe(&aux, ga);
            if ga > g {
                d = aux;
                g = ga;
                k = 0; // Algorithm 1: reset patience on improvement
            } else {
                k += 1;
            }
        }
        restarts += 1;
        if tracker.expired(cfg.time_budget) {
            break;
        }
    }
    Ok(tracker.finish(restarts))
}

/// Simulated annealing (§3.4): downhill moves accepted with probability
/// `exp((gap(aux) − gap(d)) / t_p)`, temperature decayed by `γ` every
/// `K_p` iterations; restarts until the budget expires.
pub fn simulated_annealing(
    inst: &TeInstance,
    heuristic: &Heuristic,
    cfg: &SearchConfig,
) -> TeResult<SearchOutcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hi = d_max(inst, cfg);
    let mut gauss = GaussianSampler::new(cfg.sigma_frac * inst.topo.max_capacity());
    let mut tracker = Tracker::new();
    let mut restarts = 0usize;

    'outer: loop {
        let mut d = random_demands(inst.n_pairs(), hi, &mut rng);
        let mut g = gap(inst, heuristic, &d)?;
        tracker.observe(&d, g);
        let mut temp = cfg.t0;
        let mut iters_at_temp = 0usize;
        // One annealing run: cool until the temperature is negligible and
        // the chain stops improving (patience at cold temperature).
        let mut cold_patience = 0usize;
        while cold_patience < cfg.k_patience {
            if tracker.expired(cfg.time_budget) {
                break 'outer;
            }
            let aux: Vec<f64> = d
                .iter()
                .map(|&x| (x + gauss.sample(&mut rng)).clamp(0.0, hi))
                .collect();
            let ga = gap(inst, heuristic, &aux)?;
            tracker.observe(&aux, ga);
            let accept = if ga > g {
                true
            } else {
                let p = ((ga - g) / temp.max(1e-12)).exp();
                rng.gen::<f64>() < p
            };
            if accept {
                if ga <= g {
                    cold_patience += 1;
                } else {
                    cold_patience = 0;
                }
                d = aux;
                g = ga;
            } else {
                cold_patience += 1;
            }
            iters_at_temp += 1;
            if iters_at_temp >= cfg.k_temp {
                temp *= cfg.gamma;
                iters_at_temp = 0;
            }
        }
        restarts += 1;
        if tracker.expired(cfg.time_budget) {
            break;
        }
    }
    Ok(tracker.finish(restarts))
}

/// Uniform random sampling baseline.
pub fn random_search(
    inst: &TeInstance,
    heuristic: &Heuristic,
    cfg: &SearchConfig,
) -> TeResult<SearchOutcome> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let hi = d_max(inst, cfg);
    let mut tracker = Tracker::new();
    let mut samples = 0usize;
    while !tracker.expired(cfg.time_budget) {
        let d = random_demands(inst.n_pairs(), hi, &mut rng);
        let g = gap(inst, heuristic, &d)?;
        tracker.observe(&d, g);
        samples += 1;
    }
    Ok(tracker.finish(samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::figure1_triangle;

    fn fig1() -> TeInstance {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
    }

    fn quick_cfg(ms: u64) -> SearchConfig {
        SearchConfig {
            time_budget: Duration::from_millis(ms),
            k_patience: 20,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn hill_climb_finds_positive_gap_on_figure1() {
        let inst = fig1();
        let h = Heuristic::DemandPinning { threshold: 50.0 };
        let out = hill_climb(&inst, &h, &quick_cfg(900)).unwrap();
        assert!(out.evaluations > 10);
        assert!(
            out.best_gap > 10.0,
            "hill climbing found only gap {}",
            out.best_gap
        );
        // The reported gap must be reproducible from the demands.
        let check = gap(&inst, &h, &out.best_demands).unwrap();
        assert!((check - out.best_gap).abs() < 1e-9);
    }

    #[test]
    fn annealing_runs_and_reports() {
        let inst = fig1();
        let h = Heuristic::DemandPinning { threshold: 50.0 };
        let out = simulated_annealing(&inst, &h, &quick_cfg(600)).unwrap();
        assert!(out.evaluations > 10);
        assert!(out.best_gap >= 0.0);
        // Trajectory is nondecreasing in gap and time.
        for w in out.trajectory.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn random_search_baseline() {
        let inst = fig1();
        let h = Heuristic::DemandPinning { threshold: 50.0 };
        let out = random_search(&inst, &h, &quick_cfg(300)).unwrap();
        assert!(out.evaluations > 5);
        assert!(out.best_gap >= 0.0);
    }

    #[test]
    fn deterministic_under_seed_and_eval_cap() {
        // With a generous budget relative to the tiny instance, identical
        // seeds walk identical paths for the first N evaluations.
        let inst = fig1();
        let h = Heuristic::DemandPinning { threshold: 30.0 };
        let a = hill_climb(&inst, &h, &quick_cfg(300)).unwrap();
        let b = hill_climb(&inst, &h, &quick_cfg(300)).unwrap();
        // Compare the best gap to a loose tolerance — budgets are
        // wall-clock, so only approximate agreement is guaranteed.
        assert!((a.best_gap - b.best_gap).abs() <= 25.0 + 1e-9);
    }
}
