//! Lowering a [`Model`] to the `metaopt-lp` problem form.
//!
//! The compiled artifact keeps the mapping back to model variables plus the
//! two pieces of combinatorial structure the MILP layer branches on:
//! binary variables and complementarity pairs. Each complementarity's slack
//! expression is materialized as a dedicated nonnegative LP variable tied to
//! the expression by an equality row, so branching "slack = 0" is a simple
//! bound change (the operation the dual simplex warm-starts on).

use crate::model::{Model, ObjSense, Sense, VarKind, VarRef};
use crate::{ModelError, ModelResult};
use metaopt_lp::{LpProblem, RowSense, VarId, INF};

/// Size statistics of a compiled model — the quantities Figure 6 of the
/// paper reports (#variables, #linear constraints, #SOS constraints).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelStats {
    /// Total LP variables (model variables + complementarity slacks).
    pub n_vars: usize,
    /// Linear rows (model constraints + slack-definition rows).
    pub n_linear: usize,
    /// Complementarity (SOS1-style) pairs.
    pub n_sos: usize,
    /// Binary variables.
    pub n_binary: usize,
}

impl std::fmt::Display for ModelStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vars, {} linear rows, {} SOS pairs, {} binaries",
            self.n_vars, self.n_linear, self.n_sos, self.n_binary
        )
    }
}

/// A model lowered to LP form plus combinatorial metadata.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// The relaxed LP (binaries boxed to `[0,1]`, complementarity products
    /// dropped).
    pub lp: LpProblem,
    /// `var_map[i]` is the LP variable of model variable `i`.
    pub var_map: Vec<VarId>,
    /// Model variables that must be integral.
    pub binaries: Vec<VarRef>,
    /// `(multiplier_lp_var, slack_lp_var)` pairs that must satisfy
    /// `multiplier · slack = 0`.
    pub compl_pairs: Vec<(VarId, VarId)>,
    /// Original objective sense (the LP always minimizes; for `Max` the
    /// coefficients were negated and reported objectives must be re-negated).
    pub sense: ObjSense,
    /// Size statistics.
    pub stats: ModelStats,
}

impl CompiledModel {
    /// Maps a model variable to its LP variable.
    pub fn lp_var(&self, v: VarRef) -> VarId {
        self.var_map[v.0]
    }

    /// Restores a model-space objective value from an LP-space one.
    pub fn restore_objective(&self, lp_obj: f64) -> f64 {
        match self.sense {
            ObjSense::Max => -lp_obj,
            ObjSense::Min => lp_obj,
        }
    }

    /// Extracts model-variable values from a full LP solution vector.
    pub fn extract_values(&self, lp_x: &[f64]) -> Vec<f64> {
        self.var_map.iter().map(|id| lp_x[id.0]).collect()
    }
}

/// Compiles `model` into LP form. Fails if the model carries diagonal
/// quadratic objective terms (those exist only for inner problems consumed
/// by the KKT rewriter).
pub fn compile(model: &Model) -> ModelResult<CompiledModel> {
    if !model.obj_quad.is_empty() {
        return Err(ModelError::MissingBound(
            "quadratic objectives cannot be lowered to LP; KKT-rewrite the inner problem instead"
                .into(),
        ));
    }
    let mut lp = LpProblem::new();
    let mut var_map = Vec::with_capacity(model.n_vars());
    let mut binaries = Vec::new();

    // Objective: minimize; negate for Max.
    let sense = model.objective_sense().unwrap_or(ObjSense::Min);
    let flip = match sense {
        ObjSense::Max => -1.0,
        ObjSense::Min => 1.0,
    };

    for (i, vd) in model.vars.iter().enumerate() {
        let obj = flip * model.obj.coef(VarRef(i));
        let id = lp.add_var(vd.lo, vd.hi, obj)?;
        var_map.push(id);
        if vd.kind == VarKind::Binary {
            binaries.push(VarRef(i));
        }
    }
    lp.add_obj_offset(flip * model.obj.constant_part())?;

    for c in &model.constraints {
        let sense = match c.sense {
            Sense::Le => RowSense::Le,
            Sense::Eq => RowSense::Eq,
            Sense::Ge => RowSense::Ge,
        };
        let rhs = -c.expr.constant_part();
        lp.add_row(
            sense,
            rhs,
            c.expr.terms().map(|(v, coef)| (var_map[v.0], coef)),
        )?;
    }

    // Materialize complementarity slacks.
    let mut compl_pairs = Vec::with_capacity(model.compls.len());
    for compl in &model.compls {
        let s = lp.add_var(0.0, INF, 0.0)?;
        // slack_expr − s == 0
        let rhs = -compl.slack.constant_part();
        let coeffs = compl
            .slack
            .terms()
            .map(|(v, coef)| (var_map[v.0], coef))
            .chain(std::iter::once((s, -1.0)));
        lp.add_row(RowSense::Eq, rhs, coeffs)?;
        compl_pairs.push((var_map[compl.multiplier.0], s));
    }

    let stats = ModelStats {
        n_vars: lp.n_vars(),
        n_linear: lp.n_rows(),
        n_sos: compl_pairs.len(),
        n_binary: binaries.len(),
    };

    Ok(CompiledModel {
        lp,
        var_map,
        binaries,
        compl_pairs,
        sense,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use metaopt_lp::{Simplex, SolveStatus};

    #[test]
    fn lp_only_model_roundtrips() {
        // max x + 2y, x + y <= 4, boxes [0,3].
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 3.0).unwrap();
        let y = m.add_var("y", 0.0, 3.0).unwrap();
        m.constrain(x + y, Sense::Le, 4.0).unwrap();
        m.set_objective(ObjSense::Max, LinExpr::from(x) + 2.0 * y)
            .unwrap();
        let cm = compile(&m).unwrap();
        assert_eq!(cm.stats.n_vars, 2);
        assert_eq!(cm.stats.n_linear, 1);
        assert_eq!(cm.stats.n_sos, 0);
        let sol = Simplex::new(&cm.lp).solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        // Optimum: y = 3, x = 1 → 7 (maximization).
        assert!((cm.restore_objective(sol.objective) - 7.0).abs() < 1e-7);
    }

    #[test]
    fn complementarity_slack_materialized() {
        let mut m = Model::new();
        let lam = m.add_var("lam", 0.0, 10.0).unwrap();
        let x = m.add_var("x", 0.0, 5.0).unwrap();
        // lam ⟂ (5 − x)
        m.add_complementarity(lam, LinExpr::constant(5.0) - x)
            .unwrap();
        let cm = compile(&m).unwrap();
        assert_eq!(cm.stats.n_sos, 1);
        assert_eq!(cm.stats.n_vars, 3); // lam, x, slack
        assert_eq!(cm.stats.n_linear, 1); // slack definition row
        // In the relaxation both sides may be positive simultaneously.
        let sol = Simplex::new(&cm.lp).solve().unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
    }

    #[test]
    fn quadratic_objective_rejected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 1.0).unwrap();
        m.add_quadratic_objective_term(x, 1.0).unwrap();
        assert!(compile(&m).is_err());
    }

    #[test]
    fn objective_constant_is_preserved() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 2.0).unwrap();
        m.set_objective(ObjSense::Max, LinExpr::from(x) + 10.0)
            .unwrap();
        let cm = compile(&m).unwrap();
        let sol = Simplex::new(&cm.lp).solve().unwrap();
        assert!((cm.restore_objective(sol.objective) - 12.0).abs() < 1e-8);
    }
}
