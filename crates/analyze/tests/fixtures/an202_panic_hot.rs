//@ rel: crates/milp/src/parallel.rs
//@ expect: AN202 5:9
fn steal(depth: usize) {
    if depth > 64 {
        unreachable!("depth bound");
    }
}
