//! HTTP API over the job server: routing, status mapping, the bounded
//! acceptor, and the chunked event stream.
//!
//! | Route                     | Meaning                                   |
//! |---------------------------|-------------------------------------------|
//! | `POST /jobs`              | Admit a job (durable before the `202`)    |
//! | `GET /jobs`               | List all jobs                             |
//! | `GET /jobs/{id}`          | One job's status and certified result     |
//! | `GET /jobs/{id}/events`   | NDJSON lifecycle stream (chunked)         |
//! | `DELETE /jobs/{id}`       | Cancel (drain running work to checkpoint) |
//! | `POST /admin/drain`       | Graceful shutdown                         |
//! | `GET /admin/trace`        | Flight-recorder tail (NDJSON)             |
//! | `GET /metrics`            | Prometheus text exposition                |
//! | `GET /healthz`            | Liveness + queue depth                    |
//!
//! Every request is counted and timed into the per-route
//! `metaopt_server_requests_total` / `metaopt_server_request_seconds`
//! families (no-ops unless the server was opened with a live registry).

use crate::http::{
    read_request, write_error, write_json, write_response, ChunkedWriter, ReadError, Request,
};
use crate::json::Json;
use crate::server::{CancelError, GapServer, SubmitError};
use crate::spec::parse_submit;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Concurrent connections the acceptor will service; excess connections
/// are shed immediately with `503`, never queued behind slow handlers.
pub const MAX_CONNECTIONS: usize = 64;

/// Flight-recorder records served by `GET /admin/trace` (the recorder
/// ring itself is bounded; this just caps one response body).
pub const TRACE_TAIL: usize = 256;

/// Serves the job API on `listener` until the server stops (drain or
/// fatal journal failure). Thread-per-connection behind a hard cap.
pub fn serve(server: &Arc<GapServer>, listener: TcpListener) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let live = Arc::new(AtomicUsize::new(0));
    loop {
        if server.is_stopped() {
            return Ok(());
        }
        let (mut stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            Err(e) => return Err(e),
        };
        // The handler threads do blocking reads; restore blocking mode on
        // the accepted socket with a read timeout so a silent peer cannot
        // pin a slot forever.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        if live.load(Ordering::Acquire) >= MAX_CONNECTIONS {
            server.metrics().shed_connections.inc();
            let _ = write_error(
                &mut stream,
                503,
                "overloaded",
                "connection limit reached",
                Some(1),
            );
            continue;
        }
        server
            .metrics()
            .active_connections
            .set((live.fetch_add(1, Ordering::AcqRel) + 1) as f64);
        let server = Arc::clone(server);
        let live = Arc::clone(&live);
        std::thread::spawn(move || {
            // A panicking handler must not leak its connection slot: after
            // `MAX_CONNECTIONS` leaked slots the acceptor would shed every
            // future connection with 503 forever. Contain the panic, always
            // release the slot, and tell the client what happened.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = handle(&server, &mut stream);
            }));
            if outcome.is_err() {
                let _ = write_error(
                    &mut stream,
                    500,
                    "internal_error",
                    "request handler panicked",
                    None,
                );
            }
            server
                .metrics()
                .active_connections
                .set((live.fetch_sub(1, Ordering::AcqRel) - 1) as f64);
        });
    }
}

fn handle(server: &Arc<GapServer>, stream: &mut TcpStream) -> io::Result<()> {
    let req = match read_request(stream) {
        Ok(req) => req,
        Err(ReadError::Eof) => return Ok(()),
        Err(ReadError::Io(e)) => return Err(e),
        Err(ReadError::Malformed(why)) => {
            return write_error(stream, 400, "malformed_request", &why, None)
        }
        Err(ReadError::TooLarge) => {
            return write_error(stream, 413, "payload_too_large", "body exceeds limit", None)
        }
    };
    route(server, stream, &req)
}

fn route(server: &Arc<GapServer>, stream: &mut TcpStream, req: &Request) -> io::Result<()> {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    let handles = server.metrics().route(route_name(req.method.as_str(), &segments));
    let started = server.config().clock.now();
    let out = dispatch(server, stream, req, path, &segments);
    handles.requests.inc();
    handles
        .latency
        .observe((server.config().clock.now() - started).as_secs_f64());
    out
}

/// Maps a request onto the closed set of [`crate::metrics::ROUTES`]
/// label values (anything unrecognized buckets into `not_found`, so
/// scanners cannot mint unbounded label cardinality).
fn route_name(method: &str, segments: &[&str]) -> &'static str {
    match (method, segments) {
        ("GET", ["healthz"]) => "healthz",
        ("GET", ["jobs"]) => "jobs_list",
        ("POST", ["jobs"]) => "jobs_submit",
        ("GET", ["jobs", _]) => "job_get",
        ("GET", ["jobs", _, "events"]) => "job_events",
        ("DELETE", ["jobs", _]) => "job_cancel",
        ("POST", ["admin", "drain"]) => "admin_drain",
        ("GET", ["admin", "trace"]) => "admin_trace",
        ("GET", ["metrics"]) => "metrics",
        _ => "not_found",
    }
}

fn dispatch(
    server: &Arc<GapServer>,
    stream: &mut TcpStream,
    req: &Request,
    path: &str,
    segments: &[&str],
) -> io::Result<()> {
    match (req.method.as_str(), segments) {
        ("GET", ["healthz"]) => {
            let mut body = server.status_json();
            if let Json::Obj(pairs) = &mut body {
                pairs.insert(0, ("ok".into(), Json::Bool(true)));
            }
            write_json(stream, 200, &body)
        }
        ("GET", ["jobs"]) => write_json(stream, 200, &server.jobs_json()),
        ("POST", ["jobs"]) => post_job(server, stream, req),
        ("GET", ["jobs", id]) => match parse_id(id) {
            None => bad_id(stream, id),
            Some(id) => match server.job_json(id) {
                Some(body) => write_json(stream, 200, &body),
                None => write_error(stream, 404, "not_found", &format!("no job {id}"), None),
            },
        },
        ("GET", ["jobs", id, "events"]) => match parse_id(id) {
            None => bad_id(stream, id),
            Some(id) => stream_events(server, stream, id),
        },
        ("DELETE", ["jobs", id]) => match parse_id(id) {
            None => bad_id(stream, id),
            Some(id) => delete_job(server, stream, id),
        },
        ("POST", ["admin", "drain"]) => {
            let server = Arc::clone(server);
            // an:allow(AN104): detached one-shot; `drain` is idempotent,
            // takes no connection slot, and a panic in it aborts nothing
            // the acceptor tracks — there is no state to leak.
            std::thread::spawn(move || server.drain("admin request"));
            write_json(
                stream,
                202,
                &Json::obj(vec![("draining", Json::Bool(true))]),
            )
        }
        ("GET", ["metrics"]) => write_response(
            stream,
            200,
            &[],
            "text/plain; version=0.0.4",
            server.config().registry.render().as_bytes(),
        ),
        ("GET", ["admin", "trace"]) => write_response(
            stream,
            200,
            &[],
            "application/x-ndjson",
            server.config().tracer.tail_ndjson(TRACE_TAIL).as_bytes(),
        ),
        ("GET" | "POST" | "DELETE", _) => {
            write_error(stream, 404, "not_found", &format!("no route {path}"), None)
        }
        _ => write_error(
            stream,
            405,
            "method_not_allowed",
            &format!("method {} not supported", req.method),
            None,
        ),
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok().filter(|id| *id > 0)
}

fn bad_id(stream: &mut TcpStream, raw: &str) -> io::Result<()> {
    write_error(
        stream,
        400,
        "malformed_request",
        &format!("bad job id `{raw}`"),
        None,
    )
}

fn post_job(server: &Arc<GapServer>, stream: &mut TcpStream, req: &Request) -> io::Result<()> {
    let submit = match parse_submit(&req.body) {
        Ok(s) => s,
        Err(fault) => {
            return write_error(stream, 422, fault.kind(), fault.detail(), None);
        }
    };
    match server.submit(submit) {
        Ok((id, stats)) => write_response(
            stream,
            202,
            &[("Location", format!("/jobs/{id}"))],
            "application/json",
            Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("status", Json::str("pending")),
                ("model_vars", Json::Num(stats.n_vars as f64)),
            ])
            .render()
            .as_bytes(),
        ),
        Err(err) => {
            let fault = err.to_fault();
            match err {
                SubmitError::Unavailable => {
                    write_error(stream, 503, fault.kind(), fault.detail(), Some(5))
                }
                SubmitError::Quota(secs) => {
                    // INFINITY (zero-refill quota) clamps to the cap.
                    let advise = secs.ceil().clamp(1.0, 3600.0);
                    // `advise` is clamped to [1, 3600]; the cast is exact.
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    let advise = advise as u64;
                    write_error(stream, 429, fault.kind(), fault.detail(), Some(advise))
                }
                SubmitError::QueueFull(_) => {
                    write_error(stream, 429, fault.kind(), fault.detail(), Some(2))
                }
                SubmitError::Rejected(_) => {
                    write_error(stream, 422, fault.kind(), fault.detail(), None)
                }
                SubmitError::Fatal(_) => {
                    write_error(stream, 500, fault.kind(), fault.detail(), None)
                }
            }
        }
    }
}

fn delete_job(server: &Arc<GapServer>, stream: &mut TcpStream, id: u64) -> io::Result<()> {
    match server.cancel(id) {
        Ok(state) => write_json(
            stream,
            200,
            &Json::obj(vec![
                ("id", Json::Num(id as f64)),
                ("status", Json::str(state)),
            ]),
        ),
        Err(CancelError::NotFound) => {
            write_error(stream, 404, "not_found", &format!("no job {id}"), None)
        }
        Err(CancelError::AlreadyTerminal(state)) => write_error(
            stream,
            409,
            "conflict",
            &format!("job {id} is already {state}"),
            None,
        ),
        Err(CancelError::Fatal(detail)) => {
            write_error(stream, 500, "journal_failure", &detail, None)
        }
    }
}

/// Streams a job's lifecycle events as chunked NDJSON until the job
/// reaches a terminal state (or the server stops). Each event the worker
/// journals becomes one line; the client sees checkpoints live.
fn stream_events(server: &Arc<GapServer>, stream: &mut TcpStream, id: u64) -> io::Result<()> {
    // Resolve existence before committing to a 200 chunked head.
    let Some((mut events, mut seq, mut done)) =
        server.wait_events(id, 0, Duration::from_millis(0))
    else {
        return write_error(stream, 404, "not_found", &format!("no job {id}"), None);
    };
    let mut writer = ChunkedWriter::start(stream, 200)?;
    loop {
        for line in &events {
            let mut data = line.clone().into_bytes();
            data.push(b'\n');
            writer.chunk(&data)?;
        }
        if done {
            return writer.finish();
        }
        match server.wait_events(id, seq, Duration::from_millis(250)) {
            Some((fresh, next, d)) => {
                events = fresh;
                seq = next;
                done = d;
            }
            None => return writer.finish(),
        }
    }
}
