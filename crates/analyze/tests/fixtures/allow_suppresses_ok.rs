//@ rel: crates/campaign/src/runner.rs
use std::time::Instant;

fn stamp() -> Instant {
    // an:allow(AN001): fixture demonstrating a justified wall-clock read.
    Instant::now()
}
