//! Stop-rule tests: target objective, time limits, and the §3.3 stall
//! window.

use metaopt_milp::{solve, solve_with_callback, IncumbentCallback, MilpConfig, MilpStatus};
use metaopt_model::{LinExpr, Model, ObjSense, Sense};
use std::time::Duration;

/// A knapsack with many items (slow to prove optimal, quick to find
/// feasible points for).
fn big_knapsack(n: usize) -> (Model, f64) {
    let mut m = Model::new();
    let mut w = LinExpr::zero();
    let mut v = LinExpr::zero();
    let mut total_v = 0.0;
    for i in 0..n {
        let z = m.add_binary(format!("z{i}")).unwrap();
        let wi = 1.0 + ((i * 37) % 17) as f64;
        let vi = 1.0 + ((i * 53) % 23) as f64;
        w.add_term(z, wi);
        v.add_term(z, vi);
        total_v += vi;
    }
    m.constrain(w, Sense::Le, 4.0 * n as f64).unwrap();
    m.set_objective(ObjSense::Max, v).unwrap();
    (m, total_v)
}

#[test]
fn target_objective_stops_early() {
    let (m, _total) = big_knapsack(18);
    // First get the true optimum as reference.
    let full = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(full.status, MilpStatus::Optimal);

    // Now ask only for a solution at 50% of the optimum.
    let target = 0.5 * full.objective;
    let cfg = MilpConfig {
        target_objective: Some(target),
        ..Default::default()
    };
    let quick = solve(&m, &cfg).unwrap();
    assert!(
        quick.objective >= target - 1e-9,
        "incumbent {} below target {target}",
        quick.objective
    );
    assert!(
        quick.nodes <= full.nodes,
        "target stop explored more nodes ({}) than the full solve ({})",
        quick.nodes,
        full.nodes
    );
}

#[test]
fn time_limit_yields_anytime_answer() {
    let (m, _) = big_knapsack(26);
    let cfg = MilpConfig {
        time_limit: Some(Duration::from_millis(300)),
        ..Default::default()
    };
    let sol = solve(&m, &cfg).unwrap();
    // With any budget at all, the diving strategy finds some incumbent.
    assert!(matches!(
        sol.status,
        MilpStatus::Optimal | MilpStatus::Feasible | MilpStatus::NoSolution
    ));
    if sol.status != MilpStatus::NoSolution {
        assert!(sol.objective.is_finite());
        assert!(sol.best_bound >= sol.objective - 1e-9);
    }
}

struct SlowFeeder {
    values: Vec<f64>,
    n_vars: usize,
}

impl IncumbentCallback for SlowFeeder {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        let v = self.values.pop()?;
        Some((vec![0.0; self.n_vars], v))
    }
}

/// The stall window fires when improvements dry up (callback feeds a few
/// early incumbents then goes quiet; the tree is large).
#[test]
fn stall_window_triggers() {
    let (m, total) = big_knapsack(30);
    let cfg = MilpConfig {
        stall_window: Some(Duration::from_millis(250)),
        stall_improvement: 0.005,
        time_limit: Some(Duration::from_secs(30)), // backstop, should not hit
        ..Default::default()
    };
    let mut cb = SlowFeeder {
        // Deliberately unreachable-high "certified" values are fine for
        // this stop-rule test (the solver trusts callbacks).
        values: vec![0.4 * total],
        n_vars: m.n_vars(),
    };
    let start = std::time::Instant::now();
    let sol = solve_with_callback(&m, &cfg, &mut cb).unwrap();
    // Must stop well before the 30 s backstop.
    assert!(
        start.elapsed() < Duration::from_secs(20),
        "stall window did not fire ({:?})",
        start.elapsed()
    );
    assert!(sol.objective >= 0.4 * total - 1e-9);
}
