//! Checkpoint text serialization: exact round-trips on real budget-expired
//! frontiers, resume-equivalence across the text boundary, and property
//! tests that corrupted or truncated checkpoint text is rejected with an
//! error — never a panic, never a silently different search state.

use metaopt_milp::{
    solve, solve_resumable, Checkpoint, IncumbentCallback, MilpConfig, MilpStatus,
};
use metaopt_model::{LinExpr, Model, ObjSense, Sense};
use proptest::prelude::*;

struct NoCallback;
impl IncumbentCallback for NoCallback {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        None
    }
}

/// A knapsack big enough that a tiny node budget expires mid-tree.
fn hard_knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let mut wsum = LinExpr::zero();
    let mut vsum = LinExpr::zero();
    let mut total_w = 0.0;
    for i in 0..n {
        let z = m.add_binary(format!("z{i}")).unwrap();
        // Correlated weights/values make the LP bound loose → deep trees.
        let w = 3.0 + (i as f64 * 1.37).sin().abs() * 5.0;
        let v = w + 0.1 + (i as f64 * 2.11).cos().abs();
        wsum.add_term(z, w);
        vsum.add_term(z, v);
        total_w += w;
    }
    m.constrain(wsum, Sense::Le, total_w * 0.45).unwrap();
    m.set_objective(ObjSense::Max, vsum).unwrap();
    m
}

/// Runs until the node budget expires, returning the live checkpoint.
fn expired_checkpoint(m: &Model, max_nodes: usize) -> Checkpoint {
    let cfg = MilpConfig {
        max_nodes,
        ..MilpConfig::default()
    };
    let (sol, cp) = solve_resumable(m, &cfg, &mut NoCallback, None).unwrap();
    assert_ne!(sol.status, MilpStatus::Optimal, "budget must expire");
    cp.expect("an open frontier must survive the budget")
}

#[test]
fn real_frontier_round_trips_exactly() {
    let m = hard_knapsack(14);
    for max_nodes in [3, 9, 25] {
        let cp = expired_checkpoint(&m, max_nodes);
        let text = cp.to_text();
        let back = Checkpoint::from_text(&text).unwrap();
        // Bit-exact: re-serializing the parsed checkpoint reproduces the
        // original text, including every f64 bit pattern.
        assert_eq!(back.to_text(), text);
    }
}

#[test]
fn resume_through_text_matches_resume_in_memory() {
    let m = hard_knapsack(14);
    let cp = expired_checkpoint(&m, 7);
    let text = cp.to_text();
    let full = MilpConfig::default();

    let (direct, rest_a) = solve_resumable(&m, &full, &mut NoCallback, Some(cp)).unwrap();
    let parsed = Checkpoint::from_text(&text).unwrap();
    let (via_text, rest_b) = solve_resumable(&m, &full, &mut NoCallback, Some(parsed)).unwrap();

    assert!(rest_a.is_none() && rest_b.is_none());
    assert_eq!(direct.status, via_text.status);
    assert_eq!(direct.objective.to_bits(), via_text.objective.to_bits());
    assert_eq!(direct.nodes, via_text.nodes);
    assert_eq!(direct.values, via_text.values);

    // And both agree with a from-scratch solve on the answer (node counts
    // differ — that is the point of resuming).
    let scratch = solve(&m, &full).unwrap();
    assert!((scratch.objective - direct.objective).abs() < 1e-9);
}

#[test]
fn truncated_text_is_rejected() {
    let m = hard_knapsack(12);
    let cp = expired_checkpoint(&m, 9);
    let text = cp.to_text();
    let lines: Vec<&str> = text.lines().collect();
    // Every strict line-prefix of a valid checkpoint is invalid (the `end`
    // sentinel is how a torn tail is detected).
    for keep in 0..lines.len() {
        let cut = lines[..keep].join("\n");
        assert!(
            Checkpoint::from_text(&cut).is_err(),
            "accepted a {keep}-line truncation"
        );
    }
    assert!(Checkpoint::from_text(&text).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary text never panics the parser (the vendored proptest has
    /// no regex strategies; build strings from char vectors).
    #[test]
    fn arbitrary_text_never_panics(
        chars in proptest::collection::vec(' '..'\u{7f}', 0..300),
        newlines in proptest::collection::vec(0usize..300, 0..10),
    ) {
        let mut bytes: Vec<char> = chars;
        for &at in &newlines {
            if at < bytes.len() {
                bytes[at] = '\n';
            }
        }
        let s: String = bytes.into_iter().collect();
        let _ = Checkpoint::from_text(&s);
    }

    /// Line-level mutations of a real checkpoint either fail to parse or
    /// (when the mutation is semantically harmless) reproduce a checkpoint
    /// that re-serializes cleanly — from_text never panics and never
    /// returns something its own to_text can't round-trip.
    #[test]
    fn mutated_real_checkpoints_never_panic(
        drop_line in 0usize..40,
        dup_line in 0usize..40,
        // '{' is the char after 'z': the vendored proptest only has
        // exclusive char ranges.
        garbage_chars in proptest::collection::vec('a'..'{', 0..30),
        insert_at in 0usize..40,
    ) {
        let garbage: String = garbage_chars.into_iter().collect();
        let m = hard_knapsack(12);
        let cp = expired_checkpoint(&m, 9);
        let text = cp.to_text();
        let lines: Vec<String> = text.lines().map(str::to_string).collect();

        let mut dropped = lines.clone();
        if drop_line < dropped.len() {
            dropped.remove(drop_line);
        }
        let mut duped = lines.clone();
        if dup_line < duped.len() {
            let l = duped[dup_line].clone();
            duped.insert(dup_line, l);
        }
        let mut inserted = lines.clone();
        inserted.insert(insert_at.min(inserted.len()), garbage);

        for mutant in [dropped, duped, inserted] {
            let joined = mutant.join("\n");
            if let Ok(parsed) = Checkpoint::from_text(&joined) {
                let re = parsed.to_text();
                prop_assert!(Checkpoint::from_text(&re).is_ok());
            }
        }
    }
}
