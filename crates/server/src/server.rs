//! The job server core: durable admission, the supervised worker pool,
//! event fan-out, cancellation, drain, and crash recovery.
//!
//! ## Lock discipline
//!
//! One coarse mutex guards *all* mutable state — the job table, the
//! admission queue, **and the journal writer**. Every lifecycle transition
//! therefore appends its journal record and updates the in-memory mirror
//! atomically, which makes the write-ahead invariant trivial to audit:
//! there is no interleaving in which memory says something the journal
//! does not. The expensive work (ticking a cell, building a model at
//! admission) always happens *outside* the lock; only the bookkeeping and
//! the (fsynced) append happen inside.
//!
//! ## Recovery contract
//!
//! `202 Accepted` is written to the socket only after the job's `job`
//! record is fsynced. After any hard kill, [`GapServer::open`] replays the
//! journal: terminal jobs stay terminal, pending jobs re-enter the queue
//! at their last checkpoint, and — because cells tick in fixed node-budget
//! slices and floats are journaled as exact bit patterns — the resumed
//! jobs produce bit-identical certified results.

use crate::quota::{AgingQueue, QueuedJob, QuotaBook};
use crate::spec::{validate_submit, AdmissionLimits, SubmitRequest};
use crate::metrics::ServerMetrics;
use metaopt_campaign::jobs::{JobBook, JobEntry, JobRecord, JobStatus};
use metaopt_campaign::journal::JournalDisk;
use metaopt_campaign::{
    drive_cell, quarantine_reason_for, retry_jitter_seed, run_cell_sandboxed, wire, CampaignError,
    CampaignMetrics, CellDriveEnd, Clock, Journal, SandboxConfig, SandboxEnd, SolverObs,
    SystemClock, JOURNAL_FILE,
};
use metaopt_obs::{Registry, Tracer};
use metaopt_core::SweepState;
use metaopt_model::ModelStats;
use metaopt_resilience::{
    FaultPlan, FaultSite, RetryDecision, RetryPolicy, ServiceFault, WorkerKillReason,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Server name (journal header; appears in status responses).
    pub name: String,
    /// Durable state directory (holds `journal.wal`).
    pub dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded admission queue depth; submissions beyond it shed with
    /// `429`.
    pub max_queue: usize,
    /// Per-client token-bucket burst.
    pub quota_burst: f64,
    /// Per-client token refill rate (tokens/second).
    pub quota_per_sec: f64,
    /// Seconds a waiting job needs to gain one priority class.
    pub aging_secs: f64,
    /// Retry/backoff/quarantine policy for failed attempts.
    pub retry: RetryPolicy,
    /// Solver threads for jobs that do not request any (`0` = leave the
    /// spec's default, i.e. `METAOPT_THREADS`).
    pub default_threads: usize,
    /// Basis-factorization backend forced on every cell solve (`None` =
    /// leave the spec's default, i.e. `METAOPT_FACTOR`; sparse LU when
    /// unset). Sandboxed attempts receive it through the child's
    /// environment.
    pub default_factor: Option<metaopt_core::FactorBackend>,
    /// Admission shape limits.
    pub limits: AdmissionLimits,
    /// Time source for queue aging, quotas, deadlines, and retry backoff.
    /// The default [`SystemClock`] reads the OS monotonic clock; tests
    /// inject a [`metaopt_campaign::TestClock`] to drive those paths
    /// deterministically.
    pub clock: Arc<dyn Clock>,
    /// Chaos hook, `None` in production: instrumented server fault sites
    /// (currently [`FaultSite::EvalPanic`] in the worker loop) consult this
    /// plan, so the containment paths can be driven deterministically from
    /// tests — the same pattern as `MilpConfig::fault_plan` one layer down.
    pub fault_plan: Option<FaultPlan>,
    /// Metrics registry: [`GapServer::open`] registers the
    /// `metaopt_server_*` and `metaopt_campaign_*` families here and
    /// `GET /metrics` renders it. The default disabled registry mints
    /// no-op handles — observation off costs nothing.
    pub registry: Registry,
    /// Flight-recorder tracer for job lifecycle events; `GET /admin/trace`
    /// serves its bounded NDJSON tail. Defaults to disabled.
    pub tracer: Tracer,
    /// Process isolation for cell execution: `Some` spawns every attempt
    /// as a supervised child process ([`run_cell_sandboxed`]) with
    /// heartbeat/wall/RSS enforcement; `None` (the default) drives cells
    /// in-process, contained only by `catch_unwind`.
    pub sandbox: Option<SandboxConfig>,
    /// Injectable disk layer under the journal (`None` = the real
    /// filesystem). The disk-fault drills hand in a
    /// [`metaopt_campaign::FaultyDisk`] here.
    pub disk: Option<Arc<dyn JournalDisk>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            name: "gapserver".into(),
            dir: PathBuf::from("gapserver-data"),
            workers: 2,
            max_queue: 64,
            quota_burst: 16.0,
            quota_per_sec: 4.0,
            aging_secs: 30.0,
            retry: RetryPolicy::default(),
            default_threads: 0,
            default_factor: None,
            limits: AdmissionLimits::default(),
            clock: Arc::new(SystemClock),
            fault_plan: None,
            registry: Registry::disabled(),
            tracer: Tracer::disabled(),
            sandbox: None,
            disk: None,
        }
    }
}

/// Why a submission was refused (maps onto HTTP in the API layer).
#[derive(Debug)]
pub enum SubmitError {
    /// The server is draining or stopped; nothing is admitted. (`503`)
    Unavailable,
    /// Client quota exhausted; retry after the advised seconds. (`429`)
    Quota(f64),
    /// The bounded admission queue is full. (`429`)
    QueueFull(usize),
    /// The spec failed validation / the modelcheck gate. (`422`)
    Rejected(String),
    /// Journal I/O failed; the server is now fatally stopped. (`500`)
    Fatal(String),
}

impl SubmitError {
    /// The service-fault taxonomy entry for this refusal.
    pub fn to_fault(&self) -> ServiceFault {
        match self {
            SubmitError::Unavailable => {
                ServiceFault::AdmissionRejected("server is draining or stopped".into())
            }
            SubmitError::Quota(secs) => {
                ServiceFault::QuotaExhausted(format!("retry in {secs:.3}s"))
            }
            SubmitError::QueueFull(depth) => {
                ServiceFault::QueueSaturated(format!("admission queue at capacity {depth}"))
            }
            SubmitError::Rejected(d) => ServiceFault::AdmissionRejected(d.clone()),
            SubmitError::Fatal(d) => ServiceFault::DrainTimeout(format!("journal failure: {d}")),
        }
    }
}

/// Why a cancellation was refused.
#[derive(Debug)]
pub enum CancelError {
    /// No such job.
    NotFound,
    /// The job is already terminal; there is nothing to cancel.
    AlreadyTerminal(&'static str),
    /// Journal I/O failed; the server is now fatally stopped.
    Fatal(String),
}

/// One job's live state: the replay-shaped entry plus the event log the
/// streaming endpoint serves.
#[derive(Debug)]
struct JobRuntime {
    entry: JobEntry,
    /// NDJSON event lines (without trailing newline), append-only.
    events: Vec<String>,
    /// No further events will ever be appended (terminal state reached).
    events_done: bool,
}

struct Inner {
    journal: Journal,
    jobs: BTreeMap<u64, JobRuntime>,
    queue: AgingQueue,
    /// Backoff-delayed retries: `(due, id)`.
    delayed: Vec<(Instant, u64)>,
    running: BTreeSet<u64>,
    /// Current lease per running job: `id → fence token`. Leases are
    /// in-memory (they die with the supervisor, which is what makes them
    /// safe); the token is minted monotone at claim time, journaled on
    /// the `run` record for audit, and checked by [`GapServer::record_attempt`]
    /// — a result arriving under any other token is a zombie's write and
    /// is dropped.
    leases: BTreeMap<u64, u64>,
    /// Fence mint: strictly increasing, seeded above the journal's
    /// high-water mark at boot.
    next_fence: u64,
    next_id: u64,
    draining: bool,
    stopped: bool,
    fatal: Option<String>,
    /// `Some(why)` once a journal append/fsync has failed: the server is
    /// read-only — no admissions, no new claims — but keeps answering
    /// status/metrics/results so operators can see what happened and
    /// clients can fetch completed work. Distinct from `stopped`: a
    /// degraded server still serves HTTP.
    degraded: Option<String>,
    quotas: QuotaBook,
}

/// The gap-finding job server. Construct with [`GapServer::open`], start
/// the pool with [`GapServer::start_workers`], serve HTTP with
/// [`crate::api::serve`].
pub struct GapServer {
    // lock-order: server.inner (the server's single coarse lock)
    inner: Mutex<Inner>,
    /// Wakes workers (new work, drain, stop).
    work_cv: Condvar,
    /// Wakes event streamers (new events, terminal transitions).
    event_cv: Condvar,
    cfg: ServerConfig,
    /// Retry-jitter salt: stable per server name, so many servers (or many
    /// jobs — the id is mixed in per job) never retry in lockstep.
    salt: u64,
    /// Pre-registered `metaopt_server_*` handles (no-ops when the
    /// configured registry is disabled).
    metrics: ServerMetrics,
}

impl GapServer {
    /// Opens (or creates) the server state in `cfg.dir`. An existing
    /// journal is replayed: terminal jobs stay terminal, pending jobs
    /// re-enter the queue at their last durable checkpoint, and
    /// interrupted cancellations complete.
    pub fn open(cfg: ServerConfig) -> Result<Arc<GapServer>, CampaignError> {
        let now = cfg.clock.now();
        let metrics = ServerMetrics::register(&cfg.registry);
        let campaign_metrics = CampaignMetrics::register(&cfg.registry);
        let mut queue = AgingQueue::new(Duration::from_secs_f64(cfg.aging_secs.max(0.001)));
        let mut jobs = BTreeMap::new();
        let mut next_id = 1u64;
        let mut next_fence = 1u64;
        let disk: Arc<dyn JournalDisk> = cfg
            .disk
            .clone()
            .unwrap_or_else(|| Arc::new(metaopt_campaign::RealDisk));
        let journal = if cfg.dir.join(JOURNAL_FILE).exists() {
            // Boot replay. The `metaopt_server_jobs_*` counters are
            // re-derived from the replayed book so that, after a hard
            // kill, scraped totals for durable transitions match what the
            // previous process reported — the crash drill asserts this.
            let replay_started = cfg.clock.now();
            let book = JobBook::from_dir(&cfg.dir)?;
            campaign_metrics
                .replay_seconds
                .observe((cfg.clock.now() - replay_started).as_secs_f64());
            let mut journal = Journal::open_append_with(&cfg.dir, disk)?;
            next_id = book.next_id();
            next_fence = book.max_fence + 1;
            for (id, mut entry) in book.jobs {
                metrics.jobs_admitted.inc();
                metrics
                    .jobs_retried
                    .add(replayed_retries(&entry));
                match &entry.status {
                    JobStatus::Done(_) => metrics.jobs_completed.inc(),
                    JobStatus::Quarantined { .. } => metrics.jobs_quarantined.inc(),
                    JobStatus::Cancelled => metrics.jobs_cancelled.inc(),
                    JobStatus::Pending { .. } => {}
                }
                let mut events = vec![event_line(
                    "recovered",
                    id,
                    vec![("status", Json::str(entry.status.name()))],
                )];
                let mut events_done = entry.status.is_terminal();
                match &entry.status {
                    JobStatus::Pending {
                        cancel_requested: true,
                        ..
                    } => {
                        // The kill interrupted a drain-to-checkpoint; the
                        // cancellation wins at boot.
                        journal.append(&JobRecord::Cancelled { id }.encode())?;
                        entry.status = JobStatus::Cancelled;
                        metrics.jobs_cancelled.inc();
                        events.push(event_line("cancelled", id, vec![]));
                        events_done = true;
                    }
                    JobStatus::Pending { .. } => {
                        queue.push(QueuedJob {
                            id,
                            priority: entry.priority,
                            enqueued: now,
                        });
                    }
                    _ => {}
                }
                jobs.insert(
                    id,
                    JobRuntime {
                        entry,
                        events,
                        events_done,
                    },
                );
            }
            journal
        } else {
            let mut journal = Journal::create_with(&cfg.dir, disk)?;
            journal.append(&JobBook::header(&cfg.name))?;
            journal
        };
        let mut journal = journal;
        journal.set_metrics(campaign_metrics);
        metrics.queue_depth.set(queue.len() as f64);
        let salt = u64::from(wire::crc32(cfg.name.as_bytes()));
        Ok(Arc::new(GapServer {
            inner: Mutex::new(Inner {
                journal,
                jobs,
                queue,
                delayed: Vec::new(),
                running: BTreeSet::new(),
                leases: BTreeMap::new(),
                next_fence,
                next_id,
                draining: false,
                stopped: false,
                fatal: None,
                degraded: None,
                quotas: QuotaBook::new(cfg.quota_burst, cfg.quota_per_sec),
            }),
            work_cv: Condvar::new(),
            event_cv: Condvar::new(),
            cfg,
            salt,
            metrics,
        }))
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The server's pre-registered metric handles (the API layer records
    /// per-route latency and connection churn through these).
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Whether the server has fully stopped (drain complete or fatal).
    pub fn is_stopped(&self) -> bool {
        self.lock().stopped
    }

    /// `Some(why)` when a journal fault has dropped the server into
    /// read-only degraded mode (still serving HTTP, admitting nothing).
    pub fn degraded_reason(&self) -> Option<String> {
        self.lock().degraded.clone()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("server lock poisoned")
    }

    /// Journal append + degrade on failure. On any append/fsync error the
    /// journal handle is poisoned (see the fsync-poisoning rule in
    /// `metaopt_campaign::journal`) and the server drops to read-only
    /// *degraded* mode: no admissions, no new claims, but `/metrics`,
    /// status, and completed results keep being served — a full disk
    /// must not look like a crash.
    fn append_or_die(&self, inner: &mut Inner, record: &JobRecord) -> Result<(), String> {
        match inner.journal.append(&record.encode()) {
            Ok(()) => Ok(()),
            Err(e) => {
                let msg = e.to_string();
                if inner.degraded.is_none() {
                    inner.degraded = Some(msg.clone());
                    self.cfg
                        .tracer
                        .event("server.degraded", vec![("why", msg.clone())]);
                }
                // an:allow(AN101): the caller holds the server lock — it
                // is threaded in as `&mut Inner`, so no `.lock()` appears
                // in this function's own scope.
                self.work_cv.notify_all();
                // an:allow(AN101): same held-by-caller lock as above.
                self.event_cv.notify_all();
                Err(msg)
            }
        }
    }

    /// Admits a job: validates (modelcheck gate — *outside* the lock),
    /// charges quota, enforces the bounded queue, journals the `job`
    /// record durably, and enqueues. Returns the id and the validated
    /// model's size statistics. Only after this returns may the caller
    /// acknowledge the job.
    pub fn submit(&self, req: SubmitRequest) -> Result<(u64, ModelStats), SubmitError> {
        // The expensive admission work happens before any lock.
        let stats = validate_submit(&req, &self.cfg.limits)
            .map_err(|f| SubmitError::Rejected(f.detail().to_string()))?;
        let now = self.cfg.clock.now();
        let mut inner = self.lock();
        if inner.stopped || inner.draining || inner.degraded.is_some() {
            return Err(SubmitError::Unavailable);
        }
        if let Err(wait) = inner.quotas.charge(&req.client, now) {
            self.metrics.quota_rejections.inc();
            return Err(SubmitError::Quota(wait));
        }
        if inner.queue.len() >= self.cfg.max_queue {
            self.metrics.shed_queue_full.inc();
            return Err(SubmitError::QueueFull(self.cfg.max_queue));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let client = req.client.clone();
        let record = JobRecord::Submit {
            id,
            client: req.client.clone(),
            priority: req.priority,
            threads: req.threads,
            spec: Box::new(req.spec.clone()),
        };
        // Durable before acknowledgment — the crash-safety contract.
        self.append_or_die(&mut inner, &record)
            .map_err(SubmitError::Fatal)?;
        inner.jobs.insert(
            id,
            JobRuntime {
                entry: JobEntry {
                    id,
                    client: req.client,
                    priority: req.priority,
                    threads: req.threads,
                    spec: req.spec,
                    status: JobStatus::Pending {
                        attempt: 0,
                        resume: None,
                        cancel_requested: false,
                    },
                    failures: Vec::new(),
                },
                events: vec![event_line(
                    "admitted",
                    id,
                    vec![
                        ("priority", Json::Num(f64::from(req.priority))),
                        ("model_vars", Json::Num(stats.n_vars as f64)),
                    ],
                )],
                events_done: false,
            },
        );
        inner.queue.push(QueuedJob {
            id,
            priority: req.priority,
            enqueued: now,
        });
        self.metrics.jobs_admitted.inc();
        self.metrics.queue_depth.set(inner.queue.len() as f64);
        drop(inner);
        self.cfg.tracer.event(
            "server.job_admitted",
            vec![("job", id.to_string()), ("client", client)],
        );
        self.work_cv.notify_all();
        self.event_cv.notify_all();
        Ok((id, stats))
    }

    /// Requests cancellation. Queued jobs cancel immediately; running jobs
    /// drain to their next checkpoint and then cancel.
    pub fn cancel(&self, id: u64) -> Result<&'static str, CancelError> {
        let mut inner = self.lock();
        let job = inner.jobs.get(&id).ok_or(CancelError::NotFound)?;
        match &job.entry.status {
            JobStatus::Pending {
                cancel_requested: true,
                ..
            } => return Ok("cancelling"),
            JobStatus::Pending { .. } => {}
            s => return Err(CancelError::AlreadyTerminal(s.name())),
        }
        self.append_or_die(&mut inner, &JobRecord::Cancel { id })
            .map_err(CancelError::Fatal)?;
        if let Some(rt) = inner.jobs.get_mut(&id) {
            if let JobStatus::Pending {
                cancel_requested, ..
            } = &mut rt.entry.status
            {
                *cancel_requested = true;
            }
            rt.events.push(event_line("cancel_requested", id, vec![]));
        }
        // Not running: nothing to drain, finish the cancellation now.
        let queued = inner.queue.remove(id);
        inner.delayed.retain(|(_, d)| *d != id);
        self.metrics.queue_depth.set(inner.queue.len() as f64);
        let state = if queued || !inner.running.contains(&id) {
            self.append_or_die(&mut inner, &JobRecord::Cancelled { id })
                .map_err(CancelError::Fatal)?;
            if let Some(rt) = inner.jobs.get_mut(&id) {
                rt.entry.status = JobStatus::Cancelled;
                rt.events.push(event_line("cancelled", id, vec![]));
                rt.events_done = true;
            }
            self.metrics.jobs_cancelled.inc();
            "cancelled"
        } else {
            "cancelling"
        };
        drop(inner);
        self.work_cv.notify_all();
        self.event_cv.notify_all();
        Ok(state)
    }

    /// Drains the server: stops admitting, lets running cells reach their
    /// next durable checkpoint, then writes the `shutdown` record and
    /// stops. Queued jobs stay journaled-pending and resume at next boot.
    pub fn drain(&self, reason: &str) {
        let mut inner = self.lock();
        if inner.stopped {
            return;
        }
        inner.draining = true;
        self.work_cv.notify_all();
        while !inner.running.is_empty() {
            let (guard, _) = self
                .work_cv
                .wait_timeout(inner, Duration::from_millis(20))
                .expect("server lock poisoned");
            inner = guard;
            if inner.stopped {
                return;
            }
        }
        let _ = self.append_or_die(
            &mut inner,
            &JobRecord::Shutdown {
                reason: reason.to_string(),
            },
        );
        inner.stopped = true;
        drop(inner);
        self.work_cv.notify_all();
        self.event_cv.notify_all();
    }

    /// Spawns the worker pool. Threads exit when the server drains or
    /// stops; join the handles to wait for that.
    pub fn start_workers(self: &Arc<Self>) -> Vec<std::thread::JoinHandle<()>> {
        (0..self.cfg.workers.max(1))
            .map(|_| {
                let server = Arc::clone(self);
                // an:allow(AN104): containment lives one call down —
                // in-process attempt bodies run under `catch_unwind` in
                // `in_process_attempt`, and sandboxed attempts are
                // separate processes; the loop around them cannot panic
                // into user work.
                std::thread::spawn(move || worker_loop(&server))
            })
            .collect()
    }

    /// JSON summary of the whole server.
    pub fn status_json(&self) -> Json {
        let inner = self.lock();
        let mut done = 0;
        let mut quarantined = 0;
        let mut cancelled = 0;
        let mut pending = 0;
        for rt in inner.jobs.values() {
            match &rt.entry.status {
                JobStatus::Done(_) => done += 1,
                JobStatus::Quarantined { .. } => quarantined += 1,
                JobStatus::Cancelled => cancelled += 1,
                JobStatus::Pending { .. } => pending += 1,
            }
        }
        Json::obj(vec![
            ("name", Json::str(self.cfg.name.clone())),
            ("jobs", Json::Num(inner.jobs.len() as f64)),
            ("done", Json::Num(f64::from(done))),
            ("quarantined", Json::Num(f64::from(quarantined))),
            ("cancelled", Json::Num(f64::from(cancelled))),
            ("pending", Json::Num(f64::from(pending))),
            ("queue_depth", Json::Num(inner.queue.len() as f64)),
            ("queue_capacity", Json::Num(self.cfg.max_queue as f64)),
            ("running", Json::Num(inner.running.len() as f64)),
            ("draining", Json::Bool(inner.draining)),
            ("stopped", Json::Bool(inner.stopped)),
            (
                "degraded",
                inner.degraded.clone().map_or(Json::Null, Json::Str),
            ),
            (
                "fatal",
                inner
                    .fatal
                    .clone()
                    .map_or(Json::Null, Json::Str),
            ),
        ])
    }

    /// JSON view of one job (status + certified results when done).
    pub fn job_json(&self, id: u64) -> Option<Json> {
        let inner = self.lock();
        let rt = inner.jobs.get(&id)?;
        let e = &rt.entry;
        let mut pairs = vec![
            ("id", Json::Num(e.id as f64)),
            ("label", Json::str(e.spec.label.clone())),
            ("client", Json::str(e.client.clone())),
            ("priority", Json::Num(f64::from(e.priority))),
            ("threads", Json::Num(e.threads as f64)),
            ("status", Json::str(e.status.name())),
            ("running", Json::Bool(inner.running.contains(&id))),
        ];
        let failures: Vec<Json> = e
            .failures
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("attempt", Json::Num(f.attempt as f64)),
                    ("kind", Json::str(f.kind.clone())),
                    ("detail", Json::str(f.detail.clone())),
                ])
            })
            .collect();
        pairs.push(("failures", Json::Arr(failures)));
        match &e.status {
            JobStatus::Done(o) => {
                pairs.push((
                    "result",
                    Json::obj(vec![
                        ("threshold", opt_num(o.threshold)),
                        ("verified_gap", opt_num(o.verified_gap)),
                        (
                            "demands",
                            Json::Arr(o.demands.iter().map(|&d| Json::Num(d)).collect()),
                        ),
                        ("probes", Json::Num(o.probes as f64)),
                        ("nodes", Json::Num(o.nodes as f64)),
                        // Exact f64 bit patterns: the bit-identical
                        // recovery contract is checked against this.
                        ("outcome_wire", Json::str(o.encode())),
                    ]),
                ));
            }
            JobStatus::Quarantined { reason, attempts } => {
                pairs.push((
                    "quarantine",
                    Json::obj(vec![
                        ("reason", Json::str(reason.kind())),
                        ("attempts", Json::Num(*attempts as f64)),
                    ]),
                ));
            }
            JobStatus::Pending {
                attempt, resume, ..
            } => {
                pairs.push(("attempts_failed", Json::Num(*attempt as f64)));
                if let Some(st) = resume {
                    pairs.push(("progress", progress_json(st)));
                }
            }
            JobStatus::Cancelled => {}
        }
        Some(Json::Obj(
            pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        ))
    }

    /// JSON array of all jobs (id, label, status).
    pub fn jobs_json(&self) -> Json {
        let inner = self.lock();
        Json::Arr(
            inner
                .jobs
                .values()
                .map(|rt| {
                    Json::obj(vec![
                        ("id", Json::Num(rt.entry.id as f64)),
                        ("label", Json::str(rt.entry.spec.label.clone())),
                        ("client", Json::str(rt.entry.client.clone())),
                        ("status", Json::str(rt.entry.status.name())),
                    ])
                })
                .collect(),
        )
    }

    /// Blocks up to `timeout` for events past `seq`. Returns `None` for
    /// unknown jobs, otherwise `(new_events, next_seq, done)` — `done`
    /// means the stream is complete and no further events will come.
    pub fn wait_events(
        &self,
        id: u64,
        seq: usize,
        timeout: Duration,
    ) -> Option<(Vec<String>, usize, bool)> {
        // an:allow(AN001): the poll timeout for a live HTTP client must
        // track real elapsed time — under a frozen TestClock this loop
        // would spin forever instead of timing out.
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            let rt = inner.jobs.get(&id)?;
            if rt.events.len() > seq || rt.events_done || inner.stopped {
                let fresh = rt.events.get(seq..).unwrap_or_default().to_vec();
                let next = rt.events.len().max(seq);
                let done = rt.events_done || inner.stopped;
                return Some((fresh, next, done));
            }
            // an:allow(AN001): same wall-clock poll deadline as above.
            let now = Instant::now();
            if now >= deadline {
                return Some((Vec::new(), seq, false));
            }
            let (guard, _) = self
                .event_cv
                .wait_timeout(inner, deadline - now)
                .expect("server lock poisoned");
            inner = guard;
        }
    }

    /// Journals one durable checkpoint for a running attempt, *iff* the
    /// attempt still holds the job's current lease. A stale fence means
    /// the caller is a zombie (its attempt was retried out from under
    /// it): the checkpoint is dropped without touching the journal —
    /// never an error, because the zombie has no business learning
    /// anything beyond "you are fenced off".
    pub fn record_checkpoint(
        &self,
        id: u64,
        fence: u64,
        st: &SweepState,
    ) -> Result<(), CampaignError> {
        let mut inner = self.lock();
        if inner.leases.get(&id) != Some(&fence) {
            self.fenced(id, fence, "ckpt");
            return Ok(());
        }
        self.append_or_die(
            &mut inner,
            &JobRecord::Ckpt {
                id,
                state: Box::new(st.clone()),
            },
        )
        .map_err(CampaignError::Io)?;
        if let Some(rt) = inner.jobs.get_mut(&id) {
            if let JobStatus::Pending { resume, .. } = &mut rt.entry.status {
                *resume = Some(st.clone());
            }
            let mut extra = vec![
                ("lo_bound", Json::Num(st.machine.lo_bound)),
                ("hi_bound", Json::Num(st.machine.hi_bound)),
                ("probes", Json::Num(st.machine.probes as f64)),
                ("nodes", Json::Num(st.nodes as f64)),
            ];
            if let Some(w) = &st.best_witness {
                extra.push(("incumbent_gap", Json::Num(w.verified_gap)));
            }
            rt.events.push(event_line("checkpoint", id, extra));
        }
        drop(inner);
        self.event_cv.notify_all();
        Ok(())
    }

    /// Applies one attempt's terminal outcome through the fence check:
    /// the single funnel by which results enter the journal. A stale
    /// fence journals *nothing* — this is the invariant that makes a
    /// kill-then-retry safe, because the killed attempt's late `done` or
    /// `fail` can never overwrite the retried attempt's record.
    pub fn record_attempt(
        &self,
        id: u64,
        attempt: usize,
        fence: u64,
        end: CellDriveEnd,
    ) -> RecordVerdict {
        let mut inner = self.lock();
        if inner.leases.get(&id) != Some(&fence) {
            drop(inner);
            self.fenced(id, fence, "result");
            return RecordVerdict::FencedOut;
        }
        inner.leases.remove(&id);
        inner.running.remove(&id);
        match end {
            CellDriveEnd::Finished(outcome) => {
                if self
                    .append_or_die(
                        &mut inner,
                        &JobRecord::Done {
                            id,
                            outcome: outcome.clone(),
                        },
                    )
                    .is_err()
                {
                    return RecordVerdict::Degraded;
                }
                if let Some(rt) = inner.jobs.get_mut(&id) {
                    rt.events.push(event_line(
                        "done",
                        id,
                        vec![
                            ("threshold", opt_num(outcome.threshold)),
                            ("verified_gap", opt_num(outcome.verified_gap)),
                            ("probes", Json::Num(outcome.probes as f64)),
                            ("nodes", Json::Num(outcome.nodes as f64)),
                        ],
                    ));
                    rt.entry.status = JobStatus::Done(outcome.clone());
                    rt.events_done = true;
                }
                self.metrics.jobs_completed.inc();
                self.cfg.tracer.event(
                    "server.job_done",
                    vec![
                        ("job", id.to_string()),
                        ("nodes", outcome.nodes.to_string()),
                    ],
                );
            }
            CellDriveEnd::Stopped => {
                let cancel = inner.jobs.get(&id).is_some_and(|rt| {
                    matches!(
                        rt.entry.status,
                        JobStatus::Pending {
                            cancel_requested: true,
                            ..
                        }
                    )
                });
                if cancel {
                    if self
                        .append_or_die(&mut inner, &JobRecord::Cancelled { id })
                        .is_err()
                    {
                        return RecordVerdict::Degraded;
                    }
                    if let Some(rt) = inner.jobs.get_mut(&id) {
                        rt.entry.status = JobStatus::Cancelled;
                        rt.events.push(event_line("cancelled", id, vec![]));
                        rt.events_done = true;
                    }
                    self.metrics.jobs_cancelled.inc();
                }
                // Drain: the job stays journaled-pending at its last
                // checkpoint and resumes at next boot.
            }
            CellDriveEnd::Failed { kind, detail } => {
                if self
                    .append_or_die(
                        &mut inner,
                        &JobRecord::Fail {
                            id,
                            attempt,
                            kind: kind.clone(),
                            detail: detail.clone(),
                        },
                    )
                    .is_err()
                {
                    return RecordVerdict::Degraded;
                }
                if let Some(rt) = inner.jobs.get_mut(&id) {
                    rt.entry.failures.push(metaopt_campaign::FailureRecord {
                        attempt,
                        kind: kind.clone(),
                        detail: detail.clone(),
                    });
                    if let JobStatus::Pending { attempt: a, .. } = &mut rt.entry.status {
                        *a = attempt;
                    }
                    rt.events.push(event_line(
                        "failed",
                        id,
                        vec![
                            ("attempt", Json::Num(attempt as f64)),
                            ("kind", Json::str(kind.clone())),
                            ("detail", Json::str(detail)),
                        ],
                    ));
                }
                // Panics are treated like fatal faults: almost certainly
                // deterministic, so retrying burns attempts for nothing.
                // Supervisor kills (`killed_*`) and silent worker exits
                // are the opposite: the *environment* failed, so they go
                // through the ordinary retry policy.
                let decision = if kind == "fatal" || kind == "panic" {
                    RetryDecision::Quarantine
                } else {
                    self.cfg
                        .retry
                        .on_failure(attempt, retry_jitter_seed(self.salt, id, attempt))
                };
                match decision {
                    RetryDecision::RetryAfter(delay) => {
                        inner.delayed.push((self.cfg.clock.now() + delay, id));
                        self.metrics.jobs_retried.inc();
                    }
                    RetryDecision::Quarantine => {
                        let reason = quarantine_reason_for(&kind);
                        if self
                            .append_or_die(
                                &mut inner,
                                &JobRecord::Quarantine {
                                    id,
                                    reason,
                                    attempts: attempt,
                                },
                            )
                            .is_err()
                        {
                            return RecordVerdict::Degraded;
                        }
                        if let Some(rt) = inner.jobs.get_mut(&id) {
                            rt.entry.status = JobStatus::Quarantined {
                                reason,
                                attempts: attempt,
                            };
                            rt.events.push(event_line(
                                "quarantined",
                                id,
                                vec![("reason", Json::str(reason.kind()))],
                            ));
                            rt.events_done = true;
                        }
                        self.metrics.jobs_quarantined.inc();
                        self.cfg.tracer.event(
                            "server.job_quarantined",
                            vec![
                                ("job", id.to_string()),
                                ("reason", reason.kind().to_string()),
                            ],
                        );
                    }
                }
            }
        }
        drop(inner);
        self.work_cv.notify_all();
        self.event_cv.notify_all();
        RecordVerdict::Recorded
    }

    /// Counts and traces one fenced-off zombie write.
    fn fenced(&self, id: u64, fence: u64, what: &'static str) {
        self.metrics.workers_fenced.inc();
        self.cfg.tracer.event(
            "server.fenced_write",
            vec![
                ("job", id.to_string()),
                ("fence", fence.to_string()),
                ("what", what.to_string()),
            ],
        );
    }
}

/// Verdict of offering an attempt outcome to [`GapServer::record_attempt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordVerdict {
    /// Journaled and applied.
    Recorded,
    /// Rejected by lease fencing: the fence token was not the job's
    /// current lease, so nothing touched the journal.
    FencedOut,
    /// The journal failed mid-record; the server is now degraded.
    Degraded,
}

fn opt_num(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Num)
}

/// Retries the pre-kill process performed for a replayed job: every
/// recorded failed attempt was followed by a `RetryAfter` decision except
/// the final one of a quarantined job (that one quarantined instead), so
/// boot re-derivation matches the runtime `jobs_retried` counting rule.
fn replayed_retries(entry: &JobEntry) -> u64 {
    let failures = entry.failures.len() as u64;
    match entry.status {
        JobStatus::Quarantined { .. } => failures.saturating_sub(1),
        _ => failures,
    }
}

fn progress_json(st: &SweepState) -> Json {
    Json::obj(vec![
        ("lo_bound", Json::Num(st.machine.lo_bound)),
        ("hi_bound", Json::Num(st.machine.hi_bound)),
        ("probes", Json::Num(st.machine.probes as f64)),
        ("nodes", Json::Num(st.nodes as f64)),
        (
            "incumbent_gap",
            opt_num(st.best_witness.as_ref().map(|w| w.verified_gap)),
        ),
    ])
}

fn event_line(event: &str, id: u64, extra: Vec<(&str, Json)>) -> String {
    let mut pairs = vec![("event", Json::str(event)), ("job", Json::Num(id as f64))];
    pairs.extend(extra);
    Json::obj(pairs).render()
}

/// One worker: claim the best queued job, drive it tick by tick with
/// durable checkpoints, and journal its terminal transition. Exits on
/// drain/stop.
fn worker_loop(server: &GapServer) {
    loop {
        // Claim.
        let (id, attempt, fence, spec, threads, resume) = {
            let mut inner = server.lock();
            let claimed = loop {
                if inner.stopped || inner.draining || inner.degraded.is_some() {
                    return;
                }
                let now = server.cfg.clock.now();
                let mut due = Vec::new();
                let mut i = 0;
                while i < inner.delayed.len() {
                    // an:allow(AN203): `i < len` is the loop guard and
                    // swap_remove shrinks from the tail, so the index
                    // stays in bounds on every iteration.
                    if inner.delayed[i].0 <= now {
                        due.push(inner.delayed.swap_remove(i).1);
                    } else {
                        i += 1;
                    }
                }
                for id in due {
                    if let Some(priority) = inner.jobs.get(&id).map(|rt| rt.entry.priority) {
                        inner.queue.push(QueuedJob {
                            id,
                            priority,
                            enqueued: now,
                        });
                        server.metrics.queue_depth.set(inner.queue.len() as f64);
                    }
                }
                if let Some(job) = inner.queue.pop_best(now) {
                    server.metrics.queue_depth.set(inner.queue.len() as f64);
                    break job;
                }
                let (guard, _) = server
                    .work_cv
                    .wait_timeout(inner, Duration::from_millis(25))
                    .expect("server lock poisoned");
                inner = guard;
            };
            let id = claimed.id;
            let rt = match inner.jobs.get(&id) {
                Some(rt) => rt,
                None => continue,
            };
            let (burnt, resume) = match &rt.entry.status {
                JobStatus::Pending {
                    attempt, resume, ..
                } => (*attempt, resume.clone()),
                // Terminal while queued (e.g. cancelled): nothing to run.
                _ => continue,
            };
            let attempt = burnt + 1;
            let spec = rt.entry.spec.clone();
            let threads = if rt.entry.threads > 0 {
                rt.entry.threads
            } else {
                server.cfg.default_threads
            };
            inner.running.insert(id);
            // Mint this attempt's lease. The token is strictly monotone
            // across all claims (and, via the journaled high-water mark,
            // across restarts), so "current lease" is unambiguous.
            let fence = inner.next_fence;
            inner.next_fence += 1;
            inner.leases.insert(id, fence);
            if server
                .append_or_die(&mut inner, &JobRecord::Run { id, attempt, fence })
                .is_err()
            {
                inner.running.remove(&id);
                inner.leases.remove(&id);
                return;
            }
            if let Some(rt) = inner.jobs.get_mut(&id) {
                rt.events.push(event_line(
                    "run",
                    id,
                    vec![
                        ("attempt", Json::Num(attempt as f64)),
                        ("fence", Json::Num(fence as f64)),
                    ],
                ));
            }
            drop(inner);
            server.event_cv.notify_all();
            (id, attempt, fence, spec, threads, resume)
        };

        // Execute outside the lock. The cell deadline is computed and
        // checked against the injected clock, so timeout behavior is
        // deterministic under a `TestClock`.
        let cell_deadline = spec
            .timeout_secs
            .map(|s| server.cfg.clock.now() + Duration::from_secs_f64(s));
        let mut on_checkpoint = |st: &SweepState| server.record_checkpoint(id, fence, st);
        let mut stop = || {
            let inner = server.lock();
            inner.stopped
                || inner.draining
                || inner.degraded.is_some()
                || inner.jobs.get(&id).is_some_and(|rt| {
                    matches!(
                        rt.entry.status,
                        JobStatus::Pending {
                            cancel_requested: true,
                            ..
                        }
                    )
                })
        };
        let end = match &server.cfg.sandbox {
            Some(sandbox) => sandboxed_attempt(
                server,
                sandbox,
                &spec,
                threads,
                resume,
                cell_deadline,
                &mut on_checkpoint,
                &mut stop,
            ),
            None => in_process_attempt(
                server,
                &spec,
                threads,
                resume,
                cell_deadline,
                &mut on_checkpoint,
                &mut stop,
            ),
        };

        // Record the outcome through the fenced path.
        match end {
            Err(e) => {
                // on_checkpoint journal failure: the server is already
                // degraded (read-only); release this worker's claim and
                // exit the pool.
                let mut inner = server.lock();
                inner.running.remove(&id);
                inner.leases.remove(&id);
                inner.degraded.get_or_insert(e.to_string());
                drop(inner);
                server.work_cv.notify_all();
                server.event_cv.notify_all();
                return;
            }
            Ok(end) => {
                if server.record_attempt(id, attempt, fence, end) == RecordVerdict::Degraded {
                    return;
                }
            }
        }
    }
}

/// Drives one attempt in-process (no sandbox configured): the solver
/// stack runs on this worker thread, contained by `catch_unwind`. A panic
/// escaping it would kill the worker thread with the job still in
/// `running`, so `drain` would wait on it forever — contain it and let
/// the normal failure path journal the attempt and quarantine the job.
fn in_process_attempt(
    server: &GapServer,
    spec: &metaopt_campaign::CellSpec,
    threads: usize,
    resume: Option<SweepState>,
    cell_deadline: Option<Instant>,
    on_checkpoint: &mut dyn FnMut(&SweepState) -> Result<(), CampaignError>,
    stop: &mut dyn FnMut() -> bool,
) -> Result<CellDriveEnd, CampaignError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if server
            .cfg
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.fire(FaultSite::EvalPanic))
        {
            // an:allow(AN202): chaos-injection site — unreachable unless
            // a FaultPlan arms EvalPanic; the surrounding catch_unwind
            // converts it into a quarantining `Failed{kind:"panic"}`.
            panic!("injected worker panic");
        }
        drive_cell(
            spec,
            threads,
            server.cfg.default_factor,
            resume,
            cell_deadline,
            &*server.cfg.clock,
            &SolverObs {
                metrics: server.metrics.solver.clone(),
                tracer: server.cfg.tracer.clone(),
            },
            on_checkpoint,
            stop,
        )
    }))
    .unwrap_or_else(|payload| {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Ok(CellDriveEnd::Failed {
            kind: "panic".to_string(),
            detail: format!("cell worker panicked: {detail}"),
        })
    })
}

/// Drives one attempt in a supervised child process and folds the
/// sandbox-specific endings (kills, silent exits) into the failure
/// taxonomy the retry/quarantine policy already speaks.
#[allow(clippy::too_many_arguments)]
fn sandboxed_attempt(
    server: &GapServer,
    sandbox: &SandboxConfig,
    spec: &metaopt_campaign::CellSpec,
    threads: usize,
    resume: Option<SweepState>,
    cell_deadline: Option<Instant>,
    on_checkpoint: &mut dyn FnMut(&SweepState) -> Result<(), CampaignError>,
    stop: &mut dyn FnMut() -> bool,
) -> Result<CellDriveEnd, CampaignError> {
    server.metrics.workers_spawned.inc();
    let end = run_cell_sandboxed(
        sandbox,
        spec,
        threads,
        server.cfg.default_factor,
        resume.as_ref(),
        cell_deadline,
        &*server.cfg.clock,
        &server.cfg.tracer,
        on_checkpoint,
        stop,
    )?;
    Ok(match end {
        SandboxEnd::Finished(outcome) => CellDriveEnd::Finished(outcome),
        SandboxEnd::Stopped => CellDriveEnd::Stopped,
        SandboxEnd::Failed { kind, detail } => {
            if kind == "worker_exit" {
                server.metrics.workers_lost.inc();
            }
            CellDriveEnd::Failed { kind, detail }
        }
        SandboxEnd::Killed(reason) => {
            match reason {
                WorkerKillReason::Oom => server.metrics.workers_killed_oom.inc(),
                WorkerKillReason::Deadline => server.metrics.workers_killed_deadline.inc(),
                WorkerKillReason::Heartbeat => server.metrics.workers_killed_heartbeat.inc(),
            }
            CellDriveEnd::Failed {
                kind: reason.kind().to_string(),
                detail: format!("worker killed by supervisor ({})", reason.kind()),
            }
        }
    })
}
