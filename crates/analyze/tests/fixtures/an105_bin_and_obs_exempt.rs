//@ rel: crates/server/src/bin/gapserver.rs
fn main() {
    println!("LISTENING 127.0.0.1:1");
    eprintln!("gapserver: usage");
}
