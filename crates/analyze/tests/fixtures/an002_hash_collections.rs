//@ rel: crates/milp/src/solver.rs
//@ expect: AN002 6:18
use std::collections::HashMap;

fn build() -> usize {
    let bounds = HashMap::<usize, f64>::new();
    bounds.len()
}
