//! Demand Pinning (Eqs. 4–5) — the production heuristic of the paper's
//! reference \[21\] (BLASTSHIELD) used as its running example.
//!
//! "First, it routes all demands with value at or below a threshold through
//! their shortest path. It then jointly routes the remaining demands over
//! multiple paths."
//!
//! Two realizations are provided:
//!
//! * [`demand_pinning`] — the *combinatorial* evaluator: pin, subtract
//!   capacity, then solve the residual LP for unpinned demands. It also
//!   detects the infeasible inputs of §5 ("a set of demands below the
//!   threshold sharing a link whose total exceeds the link's capacity").
//! * [`dem_pin_max_flow_lp`] — `DemPinMaxFlow` (Eq. 5) as a single
//!   optimization with the big-M pinning rows of §3.2 instantiated for
//!   *concrete* demands. Tests cross-validate both forms; the adversarial
//!   encoding with symbolic demands lives in `metaopt-core`.

use crate::flow::opt_max_flow_lp;
use crate::instance::TeInstance;
use crate::{TeError, TeResult};
use metaopt_lp::{Simplex, SolveStatus};

/// Which pairs does DP pin at threshold `t_d`? (`d_k <= t_d`, "at or below
/// the threshold"; zero-volume demands are trivially pinned.)
pub fn pin_set(demands: &[f64], t_d: f64) -> Vec<bool> {
    demands.iter().map(|&d| d <= t_d).collect()
}

/// Result of running Demand Pinning on concrete demands.
#[derive(Debug, Clone)]
pub struct DpOutcome {
    /// Whether the pinned flows fit (see §5 "identifying infeasibility").
    pub feasible: bool,
    /// Total carried flow (0 when infeasible).
    pub total_flow: f64,
    /// `flows[k][p]` per (pair, path); pinned pairs carry their full volume
    /// on path 0 (their shortest).
    pub flows: Vec<Vec<f64>>,
    /// Pin mask actually applied.
    pub pinned: Vec<bool>,
}

/// Runs the DP heuristic: pin every demand `<= t_d` onto its shortest path,
/// then route the remaining demands optimally over the residual capacity.
pub fn demand_pinning(inst: &TeInstance, demands: &[f64], t_d: f64) -> TeResult<DpOutcome> {
    inst.check_demands(demands)?;
    let pinned = pin_set(demands, t_d);
    let mut flows: Vec<Vec<f64>> = inst
        .paths
        .iter()
        .map(|ps| vec![0.0; ps.len()])
        .collect();

    // Pin phase: consume capacity along shortest paths.
    let mut residual: Vec<f64> = inst.topo.edges().map(|e| inst.topo.capacity(e)).collect();
    let mut pinned_total = 0.0;
    for k in 0..inst.n_pairs() {
        if !pinned[k] || demands[k] <= 0.0 {
            continue;
        }
        let sp = &inst.paths[k][0];
        for &e in &sp.edges {
            residual[e.0] -= demands[k];
        }
        flows[k][0] = demands[k];
        pinned_total += demands[k];
    }
    if residual.iter().any(|&r| r < -1e-9) {
        return Ok(DpOutcome {
            feasible: false,
            total_flow: 0.0,
            flows: inst.paths.iter().map(|ps| vec![0.0; ps.len()]).collect(),
            pinned,
        });
    }

    // Residual phase: optimize the unpinned demands over leftover capacity.
    let keep: Vec<usize> = (0..inst.n_pairs()).filter(|&k| !pinned[k]).collect();
    if keep.is_empty() {
        return Ok(DpOutcome {
            feasible: true,
            total_flow: pinned_total,
            flows,
            pinned,
        });
    }
    let mut sub = inst.restrict(&keep, 1.0);
    for (e, &r) in residual.iter().enumerate() {
        // Zero residual must still be a valid capacity; clamp tiny negatives.
        sub.topo
            .set_capacity(metaopt_topology::EdgeId(e), r.max(1e-12))
            .map_err(TeError::Topology)?;
    }
    let sub_dem: Vec<f64> = keep.iter().map(|&k| demands[k]).collect();
    let (lp, grid) = opt_max_flow_lp(&sub, &sub_dem)?;
    let sol = Simplex::new(&lp).solve()?;
    if sol.status != SolveStatus::Optimal {
        return Err(TeError::Model(format!(
            "DP residual LP ended {:?}",
            sol.status
        )));
    }
    for (i, &k) in keep.iter().enumerate() {
        for (p, v) in grid[i].iter().enumerate() {
            flows[k][p] = sol.x[v.0];
        }
    }
    Ok(DpOutcome {
        feasible: true,
        total_flow: pinned_total - sol.objective,
        flows,
        pinned,
    })
}

/// `DemPinMaxFlow` (Eq. 5) for concrete demands, as a plain LP: the big-M
/// rows degenerate to hard pin constraints because the pin set is known.
/// Used to cross-validate the combinatorial evaluator.
pub fn dem_pin_max_flow_lp(
    inst: &TeInstance,
    demands: &[f64],
    t_d: f64,
) -> TeResult<Option<f64>> {
    inst.check_demands(demands)?;
    let pinned = pin_set(demands, t_d);
    let (mut lp, grid) = opt_max_flow_lp(inst, demands)?;
    for k in 0..inst.n_pairs() {
        if !pinned[k] {
            continue;
        }
        // f_k^{p̂} = d_k and f_k^p = 0 for p ≠ p̂.
        for (p, &v) in grid[k].iter().enumerate() {
            if p == 0 {
                lp.set_bounds(v, demands[k].max(0.0), demands[k].max(0.0))?;
            } else {
                lp.set_bounds(v, 0.0, 0.0)?;
            }
        }
    }
    let sol = Simplex::new(&lp).solve()?;
    Ok(match sol.status {
        SolveStatus::Optimal => Some(-sol.objective),
        SolveStatus::Infeasible => None,
        other => {
            return Err(TeError::Model(format!(
                "DemPinMaxFlow LP ended {other:?}"
            )))
        }
    })
}

/// The load each pinned demand set imposes per edge — used by tests and by
/// infeasibility diagnostics.
pub fn pinned_load(inst: &TeInstance, demands: &[f64], t_d: f64) -> Vec<f64> {
    let pinned = pin_set(demands, t_d);
    let mut load = vec![0.0; inst.topo.n_edges()];
    for k in 0..inst.n_pairs() {
        if pinned[k] && demands[k] > 0.0 {
            for &e in &inst.paths[k][0].edges {
                load[e.0] += demands[k];
            }
        }
    }
    load
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::{figure1_triangle, line};
    use metaopt_topology::NodeId;

    fn fig1_instance() -> (TeInstance, [usize; 3]) {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        let pairs = vec![(n1, n3), (n1, n2), (n2, n3)];
        let inst = TeInstance::with_pairs(t, pairs, 2).unwrap();
        (inst, [0, 1, 2])
    }

    /// The Figure-1 phenomenon: pinning the 1→3 demand at the threshold
    /// wastes capacity on both hops.
    #[test]
    fn figure1_gap() {
        let (inst, [k13, k12, k23]) = fig1_instance();
        let mut demands = vec![0.0; 3];
        demands[k13] = 50.0;
        demands[k12] = 100.0;
        demands[k23] = 100.0;
        let dp = demand_pinning(&inst, &demands, 50.0).unwrap();
        assert!(dp.feasible);
        // DP: 50 pinned over both edges + 50 + 50 residual = 150.
        assert!((dp.total_flow - 150.0).abs() < 1e-6, "{}", dp.total_flow);
        let opt = crate::opt::opt_max_flow(&inst, &demands).unwrap();
        // OPT: drop 1→3 entirely → 200.
        assert!((opt.total_flow - 200.0).abs() < 1e-6, "{}", opt.total_flow);
    }

    #[test]
    fn no_pinning_above_threshold() {
        let (inst, _) = fig1_instance();
        let demands = vec![60.0, 100.0, 100.0];
        let dp = demand_pinning(&inst, &demands, 50.0).unwrap();
        let opt = crate::opt::opt_max_flow(&inst, &demands).unwrap();
        assert!((dp.total_flow - opt.total_flow).abs() < 1e-6);
        assert!(dp.pinned.iter().all(|&p| !p));
    }

    /// §5: pinned demands can oversubscribe a link → infeasible.
    #[test]
    fn infeasible_pinning_detected() {
        let t = line(2, 10.0);
        let inst = TeInstance::with_pairs(
            t,
            vec![(NodeId(0), NodeId(1)), (NodeId(0), NodeId(1))],
            1,
        )
        .unwrap();
        // Two parallel demands of 8 on the same 10-capacity link, both
        // pinned (threshold 8): total pinned 16 > 10.
        let dp = demand_pinning(&inst, &[8.0, 8.0], 8.0).unwrap();
        assert!(!dp.feasible);
        // The optimization form agrees (LP infeasible → None).
        let lp = dem_pin_max_flow_lp(&inst, &[8.0, 8.0], 8.0).unwrap();
        assert!(lp.is_none());
    }

    /// Combinatorial evaluator and Eq.-5 LP agree on feasible inputs.
    #[test]
    fn evaluator_matches_lp_form() {
        let (inst, _) = fig1_instance();
        for t_d in [0.0, 25.0, 50.0, 80.0] {
            for demands in [
                vec![50.0, 100.0, 100.0],
                vec![10.0, 90.0, 30.0],
                vec![0.0, 0.0, 0.0],
                vec![70.0, 20.0, 20.0],
            ] {
                let dp = demand_pinning(&inst, &demands, t_d).unwrap();
                let lp = dem_pin_max_flow_lp(&inst, &demands, t_d).unwrap();
                match lp {
                    Some(v) => {
                        assert!(dp.feasible);
                        assert!(
                            (v - dp.total_flow).abs() < 1e-6,
                            "t_d={t_d} demands={demands:?}: lp {v} vs eval {}",
                            dp.total_flow
                        );
                    }
                    None => assert!(!dp.feasible),
                }
            }
        }
    }

    #[test]
    fn pinned_load_accounts_hops() {
        let (inst, _) = fig1_instance();
        let load = pinned_load(&inst, &[50.0, 100.0, 100.0], 50.0);
        // Demand 1→3 (50) pinned on the 2-hop path: both edges loaded 50.
        assert_eq!(load, vec![50.0, 50.0]);
    }

    #[test]
    fn zero_threshold_pins_only_zero_demands() {
        let pins = pin_set(&[0.0, 1.0, 0.5], 0.0);
        assert_eq!(pins, vec![true, false, false]);
    }
}
