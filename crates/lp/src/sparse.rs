//! Column-oriented sparse matrix used by the simplex solver.
//!
//! The constraint matrices produced by the traffic-engineering and KKT
//! formulations are very sparse (a handful of nonzeros per column), so the
//! solver stores the matrix column-wise and performs FTRAN-style products as
//! linear combinations of dense basis-inverse columns.

/// A compressed sparse-column matrix with `f64` entries.
///
/// Built incrementally one column at a time; rows are only bounded by
/// `n_rows`, duplicate `(row, col)` entries within a column are summed.
#[derive(Debug, Clone, Default)]
pub struct SparseMat {
    n_rows: usize,
    /// Start offset of each column in `idx`/`val`; length `n_cols + 1`.
    col_ptr: Vec<usize>,
    idx: Vec<usize>,
    val: Vec<f64>,
}

impl SparseMat {
    /// Creates an empty matrix with `n_rows` rows and no columns.
    pub fn new(n_rows: usize) -> Self {
        SparseMat {
            n_rows,
            col_ptr: vec![0],
            idx: Vec::new(),
            val: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns appended so far.
    pub fn n_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Total number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Appends a column given `(row, value)` pairs. Duplicate rows are
    /// summed; zero-magnitude entries are dropped. Returns the column index.
    ///
    /// # Panics
    /// Panics if any row index is out of range.
    pub fn push_col<I: IntoIterator<Item = (usize, f64)>>(&mut self, entries: I) -> usize {
        let start = self.idx.len();
        for (r, v) in entries {
            assert!(r < self.n_rows, "row {r} out of range (n_rows={})", self.n_rows);
            if v != 0.0 {
                self.idx.push(r);
                self.val.push(v);
            }
        }
        // Sum duplicates within the freshly appended range.
        let seg_idx = &mut self.idx[start..];
        let seg_val = &mut self.val[start..];
        // Sort the segment by row index (insertion sort; columns are tiny).
        for i in 1..seg_idx.len() {
            let mut j = i;
            while j > 0 && seg_idx[j - 1] > seg_idx[j] {
                seg_idx.swap(j - 1, j);
                seg_val.swap(j - 1, j);
                j -= 1;
            }
        }
        // Merge equal rows in place.
        let mut w = 0usize;
        for r in 0..seg_idx.len() {
            if w > 0 && seg_idx[w - 1] == seg_idx[r] {
                seg_val[w - 1] += seg_val[r];
            } else {
                seg_idx[w] = seg_idx[r];
                seg_val[w] = seg_val[r];
                w += 1;
            }
        }
        self.idx.truncate(start + w);
        self.val.truncate(start + w);
        self.col_ptr.push(self.idx.len());
        self.col_ptr.len() - 2
    }

    /// Iterates over the `(row, value)` nonzeros of column `c`.
    pub fn col(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.idx[lo..hi]
            .iter()
            .copied()
            .zip(self.val[lo..hi].iter().copied())
    }

    /// Number of nonzeros in column `c`.
    pub fn col_nnz(&self, c: usize) -> usize {
        self.col_ptr[c + 1] - self.col_ptr[c]
    }

    /// Dense dot product of column `c` with vector `y` (`yᵀ a_c`).
    pub fn col_dot(&self, c: usize, y: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (r, v) in self.col(c) {
            acc += y[r] * v;
        }
        acc
    }

    /// Adds `scale * a_c` into dense vector `out`.
    pub fn col_axpy(&self, c: usize, scale: f64, out: &mut [f64]) {
        for (r, v) in self.col(c) {
            out[r] += scale * v;
        }
    }

    /// Scales every stored entry of row `r` by `scales[r]`, across all
    /// columns (one pass over the nonzeros). Used by the simplex recovery
    /// ladder's row equilibration.
    pub fn scale_rows(&mut self, scales: &[f64]) {
        assert_eq!(scales.len(), self.n_rows, "one scale factor per row");
        for (r, v) in self.idx.iter().zip(self.val.iter_mut()) {
            *v *= scales[*r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_columns() {
        let mut m = SparseMat::new(3);
        let c0 = m.push_col([(0, 1.0), (2, -2.0)]);
        let c1 = m.push_col([(1, 4.0)]);
        assert_eq!((c0, c1), (0, 1));
        assert_eq!(m.n_cols(), 2);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, -2.0)]);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(1, 4.0)]);
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let mut m = SparseMat::new(4);
        m.push_col([(2, 1.0), (0, 3.0), (2, 2.5), (1, 0.0)]);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 3.0), (2, 3.5)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn duplicates_cancelling_to_zero_are_kept_small() {
        let mut m = SparseMat::new(2);
        m.push_col([(0, 1.0), (0, -1.0)]);
        // Exact cancellation keeps a single 0.0 entry; acceptable and harmless.
        assert_eq!(m.col_nnz(0), 1);
        assert_eq!(m.col_dot(0, &[5.0, 7.0]), 0.0);
    }

    #[test]
    fn dot_and_axpy() {
        let mut m = SparseMat::new(3);
        m.push_col([(0, 2.0), (1, -1.0)]);
        assert_eq!(m.col_dot(0, &[3.0, 4.0, 100.0]), 2.0);
        let mut out = vec![0.0; 3];
        m.col_axpy(0, 2.0, &mut out);
        assert_eq!(out, vec![4.0, -2.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_row_panics() {
        let mut m = SparseMat::new(2);
        m.push_col([(2, 1.0)]);
    }
}
