//! Adversarial topology changes (§5): which capacity degradations hurt
//! Demand Pinning the most, for traffic the network handles fine today?
//!
//! The leader may shave up to 30% off each link (think maintenance drain
//! or partial fiber faults), demands stay fixed; the search finds the
//! degradation that maximizes `OPT − DP` — telling an operator which link
//! outages would make their heuristic's decisions costly.
//!
//! ```sh
//! cargo run --release --example topology_attack
//! ```

use metaopt::core::{
    find_adversarial_topology, FinderConfig, HeuristicSpec, TopologyAttack,
};
use metaopt::te::{eval::gap as eval_gap, Heuristic, TeInstance};
use metaopt::topology::synth::circulant;

fn main() {
    let topo = circulant(6, 1, 100.0);
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    let threshold = 10.0;

    // A fixed demand matrix the heuristic currently handles acceptably:
    // each node sends 10 (pinnable) to its antipode and 60 to each of its
    // two ring neighbors — the intact network carries everything, gap 0.
    let mut demands = vec![0.0; inst.n_pairs()];
    for (k, &(s, t)) in inst.pairs.iter().enumerate() {
        let n = 6;
        if (s.0 + 3) % n == t.0 {
            demands[k] = 10.0; // long-haul demand at the pin threshold
        } else if (s.0 + 1) % n == t.0 || (t.0 + 1) % n == s.0 {
            demands[k] = 60.0; // neighbor traffic, both directions
        }
    }

    let baseline = eval_gap(
        &inst,
        &Heuristic::DemandPinning { threshold },
        &demands,
    )
    .unwrap();
    println!("6-ring, DP threshold {threshold}; baseline gap on intact topology: {baseline:.1}");

    let attack = TopologyAttack::per_edge(0.30).with_total_budget(150.0);
    let r = find_adversarial_topology(
        &inst,
        &HeuristicSpec::DemandPinning { threshold },
        &demands,
        &attack,
        &FinderConfig::budgeted(20.0),
    )
    .unwrap();

    println!(
        "worst-case degradation (≤30%/link, ≤150 units total): gap {:.1} ({:?})",
        r.gap.verified_gap, r.gap.status
    );
    println!("degraded links:");
    for (e, &c) in r.capacities.iter().enumerate() {
        let c0 = inst.topo.capacity(metaopt::topology::EdgeId(e));
        if c < c0 - 1e-6 {
            let (u, v) = inst.topo.endpoints(metaopt::topology::EdgeId(e));
            println!("  {} → {}: {c0:.0} → {c:.1}  (−{:.1})", u.0, v.0, c0 - c);
        }
    }
    println!(
        "\nReading: degrading the right links turns a benign traffic matrix\n\
         adversarial — the §5 \"topology changes\" use case."
    );
}
