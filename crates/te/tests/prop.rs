//! Property tests for the TE layer: evaluator/optimization-form agreement,
//! flow-physics invariants, and heuristic dominance, on randomized
//! instances.

use metaopt_te::{
    demand_pinning::{dem_pin_max_flow_lp, demand_pinning},
    flow::edge_incidence,
    opt::opt_max_flow,
    pop::{pop_max_flow, random_partition},
    TeInstance,
};
use metaopt_topology::synth::{circulant, grid, line, star};
use metaopt_topology::Topology;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn topo(idx: usize) -> Topology {
    match idx % 6 {
        0 => line(3, 40.0),
        1 => line(4, 40.0),
        2 => star(3, 40.0),
        3 => circulant(4, 1, 40.0),
        4 => circulant(6, 2, 40.0),
        _ => grid(2, 3, 40.0),
    }
}

fn random_demands(n: usize, seed: u64, hi: f64) -> Vec<f64> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.0..hi)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The combinatorial DP evaluator and the Eq.-5 optimization form agree
    /// on every feasible input, and agree about infeasibility.
    #[test]
    fn dp_evaluator_matches_optimization_form(
        t_idx in 0usize..6,
        seed in 0u64..10_000,
        threshold in 0.0f64..45.0,
    ) {
        let inst = TeInstance::all_pairs(topo(t_idx), 2).unwrap();
        let demands = random_demands(inst.n_pairs(), seed, 50.0);
        let eval = demand_pinning(&inst, &demands, threshold).unwrap();
        let lp = dem_pin_max_flow_lp(&inst, &demands, threshold).unwrap();
        match lp {
            Some(v) => {
                prop_assert!(eval.feasible);
                prop_assert!((v - eval.total_flow).abs() <= 1e-5 * (1.0 + v.abs()),
                    "lp {v} vs evaluator {}", eval.total_flow);
            }
            None => prop_assert!(!eval.feasible),
        }
    }

    /// OPT's flow assignment respects demands, capacities, and
    /// nonnegativity — the FeasibleFlow invariants of Eq. 2.
    #[test]
    fn opt_flows_satisfy_feasible_flow(
        t_idx in 0usize..6,
        seed in 0u64..10_000,
    ) {
        let inst = TeInstance::all_pairs(topo(t_idx), 2).unwrap();
        let demands = random_demands(inst.n_pairs(), seed, 60.0);
        let out = opt_max_flow(&inst, &demands).unwrap();
        // Demand rows.
        for (k, flows) in out.flows.iter().enumerate() {
            let fk: f64 = flows.iter().sum();
            prop_assert!(fk <= demands[k] + 1e-6, "pair {k}: {fk} > {}", demands[k]);
            prop_assert!(flows.iter().all(|&f| f >= -1e-9));
        }
        // Capacity rows.
        for (e, users) in edge_incidence(&inst).into_iter().enumerate() {
            let load: f64 = users.iter().map(|&(k, p)| out.flows[k][p]).sum();
            let cap = inst.topo.capacity(metaopt_topology::EdgeId(e));
            prop_assert!(load <= cap + 1e-6, "edge {e}: {load} > {cap}");
        }
        // Objective consistency.
        let total: f64 = out.flows.iter().flatten().sum();
        prop_assert!((total - out.total_flow).abs() <= 1e-6 * (1.0 + total));
    }

    /// DP's flow assignment also satisfies FeasibleFlow, pins correctly,
    /// and never beats OPT.
    #[test]
    fn dp_flows_feasible_and_dominated(
        t_idx in 0usize..6,
        seed in 0u64..10_000,
        threshold in 0.0f64..30.0,
    ) {
        let inst = TeInstance::all_pairs(topo(t_idx), 2).unwrap();
        let demands = random_demands(inst.n_pairs(), seed, 35.0);
        let dp = demand_pinning(&inst, &demands, threshold).unwrap();
        if !dp.feasible {
            return Ok(());
        }
        for (e, users) in edge_incidence(&inst).into_iter().enumerate() {
            let load: f64 = users.iter().map(|&(k, p)| dp.flows[k][p]).sum();
            let cap = inst.topo.capacity(metaopt_topology::EdgeId(e));
            prop_assert!(load <= cap + 1e-6, "edge {e}: {load} > {cap}");
        }
        for (k, &dk) in demands.iter().enumerate().take(inst.n_pairs()) {
            if dp.pinned[k] {
                // Pinned: everything on the shortest path, exactly d_k.
                prop_assert!((dp.flows[k][0] - dk).abs() <= 1e-6);
                for p in 1..dp.flows[k].len() {
                    prop_assert!(dp.flows[k][p].abs() <= 1e-9);
                }
            }
        }
        let opt = opt_max_flow(&inst, &demands).unwrap();
        prop_assert!(dp.total_flow <= opt.total_flow + 1e-6,
            "DP {} beats OPT {}", dp.total_flow, opt.total_flow);
    }

    /// POP per-partition totals sum to the whole, and POP never beats OPT.
    #[test]
    fn pop_partition_accounting(
        t_idx in 0usize..6,
        seed in 0u64..10_000,
        n_parts in 1usize..4,
    ) {
        let inst = TeInstance::all_pairs(topo(t_idx), 2).unwrap();
        let demands = random_demands(inst.n_pairs(), seed, 60.0);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let part = random_partition(inst.n_pairs(), n_parts, &mut rng);
        let pop = pop_max_flow(&inst, &demands, &part).unwrap();
        let sum: f64 = pop.per_partition.iter().sum();
        prop_assert!((sum - pop.total_flow).abs() <= 1e-9);
        prop_assert_eq!(pop.per_partition.len(), n_parts);
        let opt = opt_max_flow(&inst, &demands).unwrap();
        prop_assert!(pop.total_flow <= opt.total_flow + 1e-6);
    }

    /// Monotonicity: raising one demand never decreases OPT's total flow.
    #[test]
    fn opt_monotone_in_demand(
        t_idx in 0usize..6,
        seed in 0u64..10_000,
        which in 0usize..40,
        bump in 0.1f64..20.0,
    ) {
        let inst = TeInstance::all_pairs(topo(t_idx), 2).unwrap();
        let demands = random_demands(inst.n_pairs(), seed, 40.0);
        let base = opt_max_flow(&inst, &demands).unwrap().total_flow;
        let mut more = demands.clone();
        let k = which % inst.n_pairs();
        more[k] += bump;
        let bigger = opt_max_flow(&inst, &more).unwrap().total_flow;
        prop_assert!(bigger >= base - 1e-6, "OPT dropped {base} → {bigger}");
    }
}
