#![allow(clippy::all, clippy::pedantic, clippy::nursery)] // vendored offline subset: exempt from the repo lint bar
//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion its benches use: [`Criterion::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] (both forms) and
//! [`criterion_main!`]. Timing is a simple median-of-samples wall-clock
//! measurement — adequate for the relative comparisons the benches exist
//! for, with none of criterion's statistics.

use std::time::Instant;

/// Re-export for parity with `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Passed to the closure of [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting one wall-clock sample per configured
    /// iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed region.
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name}: no samples recorded");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{name}: median {:.3} ms (min {:.3} ms, max {:.3} ms, {} samples)",
            median * 1e3,
            min * 1e3,
            max * 1e3,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group (both the struct-field and positional forms
/// of the real macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
