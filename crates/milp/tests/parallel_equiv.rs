//! Differential equivalence harness for the parallel branch-and-bound
//! engines, run on the real paper encodings (fig-1 triangle, Demand
//! Pinning and POP adversarial-gap programs):
//!
//! * `ParallelMode::Deterministic` at 1, 2, and 8 threads must produce
//!   **bit-identical** certified results — objective, dual bound, node
//!   count, and the full `Checkpoint::to_text` serialization of an
//!   interrupted search — and all of them must match the engine's
//!   1-thread baseline.
//! * `ParallelMode::WorkStealing` is timing-dependent by design, so it is
//!   held to the certification bar instead: the same optimal objective
//!   within `CERT_TOL` and a closed gap.
//!
//! The models are built through `metaopt-core`'s encoders (a dev-only
//! dependency cycle, which cargo permits) so the harness exercises exactly
//! the mixed binary/complementarity structures the engines exist for.

use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_milp::{
    solve, solve_resumable, Checkpoint, FactorBackend, IncumbentCallback, MilpConfig,
    MilpSolution, MilpStatus, ParallelMode, CERT_TOL,
};
use metaopt_model::Model;
use metaopt_te::pop::Partition;
use metaopt_te::TeInstance;
use metaopt_topology::synth::figure1_triangle;

fn fig1() -> TeInstance {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

/// The fig-1 Demand Pinning adversarial program (binary branching).
fn dp_model() -> Model {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let cfg = FinderConfig::default();
    build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg)
        .unwrap()
        .model
}

/// The fig-1 POP adversarial program (complementarity/SOS1 branching).
fn pop_model() -> Model {
    let inst = fig1();
    // Two fixed 2-way partitions: deterministic, no RNG involved.
    let spec = HeuristicSpec::Pop {
        partitions: vec![
            Partition {
                assignment: vec![0, 1, 0],
                n_parts: 2,
            },
            Partition {
                assignment: vec![1, 0, 1],
                n_parts: 2,
            },
        ],
        mode: PopMode::Average,
    };
    let cfg = FinderConfig::default();
    build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg)
        .unwrap()
        .model
}

fn det_cfg(threads: usize) -> MilpConfig {
    det_cfg_with(threads, FactorBackend::from_env())
}

fn det_cfg_with(threads: usize, factor: FactorBackend) -> MilpConfig {
    MilpConfig {
        threads,
        parallel: ParallelMode::Deterministic,
        factor,
        ..MilpConfig::default()
    }
}

const BACKENDS: [FactorBackend; 2] = [FactorBackend::Dense, FactorBackend::SparseLU];

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Exact (bit-level) signature of a certified solve.
fn signature(sol: &MilpSolution) -> (u64, u64, usize, usize) {
    (
        sol.objective.to_bits(),
        sol.best_bound.to_bits(),
        sol.nodes,
        sol.numerical_prunes,
    )
}

struct NoCb;
impl IncumbentCallback for NoCb {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        None
    }
}

/// Deterministic engine, full solve: the signature is identical at every
/// thread count, on both paper encodings — under each factorization
/// backend separately. (Across backends the floating-point arithmetic
/// differs, so bit-identity is required per backend, while the certified
/// objectives must still agree to `CERT_TOL` between backends.)
#[test]
fn deterministic_solves_are_bit_identical_across_thread_counts() {
    for (name, model) in [("dp", dp_model()), ("pop", pop_model())] {
        let mut by_backend: Vec<f64> = Vec::new();
        for backend in BACKENDS {
            let mut baseline = None;
            for threads in THREAD_COUNTS {
                let sol = solve(&model, &det_cfg_with(threads, backend)).unwrap();
                assert_eq!(
                    sol.status,
                    MilpStatus::Optimal,
                    "{name} ({backend}) at {threads} threads did not certify"
                );
                let sig = signature(&sol);
                match &baseline {
                    None => {
                        by_backend.push(sol.objective);
                        baseline = Some(sig);
                    }
                    Some(b) => assert_eq!(
                        &sig, b,
                        "{name} ({backend}): thread count {threads} changed the certified result"
                    ),
                }
            }
        }
        let (d, s) = (by_backend[0], by_backend[1]);
        assert!(
            (d - s).abs() <= CERT_TOL * (1.0 + d.abs()),
            "{name}: dense {d} vs sparse {s} exceeded CERT_TOL"
        );
    }
}

/// Deterministic engine, interrupted solve: a node budget stops every run
/// on the same wave boundary, so the checkpoint — down to its exact
/// `to_text` bytes — is identical at every thread count.
#[test]
fn deterministic_checkpoints_serialize_identically() {
    for (name, model) in [("dp", dp_model()), ("pop", pop_model())] {
        for budget_nodes in [1usize, 5, 9, 17] {
            let mut texts: Vec<Option<String>> = Vec::new();
            for threads in THREAD_COUNTS {
                let cfg = MilpConfig {
                    max_nodes: budget_nodes,
                    ..det_cfg(threads)
                };
                let (_, cp) = solve_resumable(&model, &cfg, &mut NoCb, None).unwrap();
                texts.push(cp.map(|c| c.to_text()));
            }
            for pair in texts.windows(2) {
                assert_eq!(
                    pair[0], pair[1],
                    "{name}: checkpoint text diverged across thread counts at {budget_nodes} nodes"
                );
            }
        }
    }
}

/// Deterministic engine, interrupt + resume: stopping at a node budget and
/// resuming yields the same certified signature as an uninterrupted run,
/// at every thread count.
#[test]
fn deterministic_resume_matches_uninterrupted_run() {
    for (name, model) in [("dp", dp_model()), ("pop", pop_model())] {
        for threads in THREAD_COUNTS {
            let full = solve(&model, &det_cfg(threads)).unwrap();
            let cfg = MilpConfig {
                max_nodes: 9,
                ..det_cfg(threads)
            };
            let (first, cp) = solve_resumable(&model, &cfg, &mut NoCb, None).unwrap();
            let resumed = match cp {
                Some(cp) => {
                    // Round-trip the checkpoint through its text form, as
                    // the campaign journal does.
                    let cp = Checkpoint::from_text(&cp.to_text()).unwrap();
                    let relaxed = det_cfg(threads);
                    let (sol, rest) = solve_resumable(&model, &relaxed, &mut NoCb, Some(cp)).unwrap();
                    assert!(rest.is_none(), "{name}: resumed run still interrupted");
                    sol
                }
                None => first,
            };
            assert_eq!(
                signature(&resumed),
                signature(&full),
                "{name} at {threads} threads: resume diverged from uninterrupted run"
            );
        }
    }
}

/// The reported `MilpSolution::trajectory` is wall-clock seconds in every
/// engine — the deterministic engine's node-axis replay trajectory stays
/// internal to its checkpoint. A node-count axis would exceed the
/// (sub-second) fig-1 solve time, which is what this guards against.
#[test]
fn deterministic_trajectory_is_wall_clock() {
    for (name, model) in [("dp", dp_model()), ("pop", pop_model())] {
        for threads in THREAD_COUNTS {
            let sol = solve(&model, &det_cfg(threads)).unwrap();
            assert!(
                !sol.trajectory.is_empty(),
                "{name} at {threads} threads: no incumbent improvements recorded"
            );
            let secs = sol.solve_time.as_secs_f64();
            for &(t, _) in &sol.trajectory {
                assert!(
                    (0.0..=secs).contains(&t),
                    "{name} at {threads} threads: trajectory timestamp {t} outside \
                     [0, {secs}]s — node counts leaked into the seconds axis"
                );
            }
        }
    }
}

/// Resuming a deterministic checkpoint on the *serial* engine must not
/// splice the checkpoint's node-axis trajectory into the serial engine's
/// wall-clock one: units never mix in a reported trajectory.
#[test]
fn cross_engine_resume_never_mixes_trajectory_units() {
    for (name, model) in [("dp", dp_model()), ("pop", pop_model())] {
        let cfg = MilpConfig {
            max_nodes: 9,
            ..det_cfg(8)
        };
        let (_, cp) = solve_resumable(&model, &cfg, &mut NoCb, None).unwrap();
        let Some(cp) = cp else { continue };
        let cp = Checkpoint::from_text(&cp.to_text()).unwrap();
        let serial = MilpConfig {
            parallel: ParallelMode::Serial,
            ..MilpConfig::default()
        };
        let (sol, rest) = solve_resumable(&model, &serial, &mut NoCb, Some(cp)).unwrap();
        assert!(rest.is_none(), "{name}: serial resume still interrupted");
        assert_eq!(sol.status, MilpStatus::Optimal, "{name}: resume did not certify");
        let secs = sol.solve_time.as_secs_f64();
        for &(t, _) in &sol.trajectory {
            assert!(
                (0.0..=secs).contains(&t),
                "{name}: serial resume reported timestamp {t} outside [0, {secs}]s — \
                 node-axis checkpoint entries leaked into the wall-clock trajectory"
            );
        }
    }
}

/// Work-stealing engine: nondeterministic visit order, but the certified
/// objective must match the serial result within `CERT_TOL` and the gap
/// must close, at every thread count.
#[test]
fn work_stealing_certifies_same_objective() {
    for (name, model) in [("dp", dp_model()), ("pop", pop_model())] {
        let serial = solve(
            &model,
            &MilpConfig {
                parallel: ParallelMode::Serial,
                ..MilpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(serial.status, MilpStatus::Optimal);
        for threads in THREAD_COUNTS {
            let cfg = MilpConfig {
                threads,
                parallel: ParallelMode::WorkStealing,
                ..MilpConfig::default()
            };
            let sol = solve(&model, &cfg).unwrap();
            assert_eq!(
                sol.status,
                MilpStatus::Optimal,
                "{name} work-stealing at {threads} threads did not certify"
            );
            assert!(
                (sol.objective - serial.objective).abs()
                    <= CERT_TOL * (1.0 + serial.objective.abs()),
                "{name} at {threads} threads: work-stealing objective {} vs serial {}",
                sol.objective,
                serial.objective
            );
            assert!(
                sol.rel_gap <= cfg.rel_gap + CERT_TOL,
                "{name} at {threads} threads: gap {} not closed",
                sol.rel_gap
            );
        }
    }
}

/// `ParallelMode::Auto` picks the serial engine at one thread and the
/// deterministic engine above one — and both agree with the explicit
/// serial engine's certified objective within `CERT_TOL`.
#[test]
fn auto_mode_matches_serial_certification() {
    let model = dp_model();
    let serial = solve(
        &model,
        &MilpConfig {
            parallel: ParallelMode::Serial,
            ..MilpConfig::default()
        },
    )
    .unwrap();
    for threads in [1usize, 8] {
        let sol = solve(
            &model,
            &MilpConfig {
                threads,
                ..MilpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sol.status, MilpStatus::Optimal);
        assert!(
            (sol.objective - serial.objective).abs() <= CERT_TOL * (1.0 + serial.objective.abs()),
            "auto at {threads} threads: objective {} vs serial {}",
            sol.objective,
            serial.objective
        );
    }
}
