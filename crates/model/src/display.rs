//! Human-readable export of models in (CPLEX-style) LP format.
//!
//! Indispensable when debugging KKT rewrites: the emitted text shows every
//! stationarity row, complementarity pair, and big-M gadget with its
//! diagnostic name, and can be fed to external solvers for cross-checking.

use crate::model::{Model, ObjSense, Sense, VarKind, VarRef};
use std::fmt::Write as _;

/// Renders `model` in LP format. Complementarity pairs — which the format
/// has no native syntax for — are listed in a comment block before `End`.
pub fn to_lp_format(model: &Model) -> String {
    let mut out = String::new();
    let name = |v: VarRef| -> String {
        let n = model.var_name(v);
        if n.is_empty() {
            format!("x{}", v.0)
        } else {
            sanitize(n)
        }
    };

    // Objective.
    match model.objective_sense() {
        Some(ObjSense::Max) => out.push_str("Maximize\n obj: "),
        Some(ObjSense::Min) | None => out.push_str("Minimize\n obj: "),
    }
    if model.objective().n_terms() == 0 {
        out.push('0');
    } else {
        let mut first = true;
        for (v, c) in model.objective().terms() {
            push_term(&mut out, c, &name(v), &mut first);
        }
    }
    let oc = model.objective().constant_part();
    if oc != 0.0 {
        let _ = write!(out, " {} {}", if oc >= 0.0 { "+" } else { "-" }, oc.abs());
    }
    out.push('\n');

    // Constraints.
    out.push_str("Subject To\n");
    for (i, c) in model.constraints().iter().enumerate() {
        let label = c
            .name
            .as_deref()
            .map_or_else(|| format!("c{i}"), sanitize);
        let _ = write!(out, " {label}: ");
        let mut first = true;
        for (v, coef) in c.expr.terms() {
            push_term(&mut out, coef, &name(v), &mut first);
        }
        if first {
            out.push('0');
        }
        let rhs = -c.expr.constant_part();
        let op = match c.sense {
            Sense::Le => "<=",
            Sense::Eq => "=",
            Sense::Ge => ">=",
        };
        let _ = writeln!(out, " {op} {rhs}");
    }

    // Bounds.
    out.push_str("Bounds\n");
    for i in 0..model.n_vars() {
        let v = VarRef(i);
        let (lo, hi) = model.var_bounds(v);
        if model.var_kind(v) == VarKind::Binary && lo == 0.0 && hi == 1.0 {
            continue; // covered by the Binary section
        }
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) if lo == hi => {
                let _ = writeln!(out, " {} = {lo}", name(v));
            }
            (true, true) => {
                let _ = writeln!(out, " {lo} <= {} <= {hi}", name(v));
            }
            (true, false) => {
                if lo != 0.0 {
                    let _ = writeln!(out, " {} >= {lo}", name(v));
                }
                // lo == 0, hi == inf is LP-format's default: omit.
            }
            (false, true) => {
                let _ = writeln!(out, " -inf <= {} <= {hi}", name(v));
            }
            (false, false) => {
                let _ = writeln!(out, " {} free", name(v));
            }
        }
    }

    // Binaries.
    let binaries: Vec<String> = (0..model.n_vars())
        .filter(|&i| model.var_kind(VarRef(i)) == VarKind::Binary)
        .map(|i| name(VarRef(i)))
        .collect();
    if !binaries.is_empty() {
        out.push_str("Binary\n ");
        out.push_str(&binaries.join(" "));
        out.push('\n');
    }

    // Complementarities as comments (no LP-format syntax exists). Emitted
    // *before* `End` — parsers ignore everything after `End`, which made
    // the pairs invisible to anyone cross-checking the export.
    if model.n_complementarities() > 0 {
        out.push_str("\\ Complementarity pairs (multiplier _|_ slack):\n");
        for i in 0..model.n_complementarities() {
            let _ = writeln!(out, "\\  compl{}: {}", i, describe_complementarity(model, i));
        }
    }

    out.push_str("End\n");
    out
}

/// Renders a linear expression with diagnostic variable names (constant
/// included when nonzero).
fn render_expr(model: &Model, e: &crate::expr::LinExpr) -> String {
    let mut s = String::new();
    let mut first = true;
    for (v, coef) in e.terms() {
        push_term(&mut s, coef, &display_name(model, v), &mut first);
    }
    let c = e.constant_part();
    if c != 0.0 || first {
        if first {
            let _ = write!(s, "{c}");
        } else {
            let _ = write!(s, " {} {}", if c >= 0.0 { "+" } else { "-" }, c.abs());
        }
    }
    s
}

fn display_name(model: &Model, v: VarRef) -> String {
    let n = model.var_name(v);
    if n.is_empty() {
        format!("x{}", v.0)
    } else {
        sanitize(n)
    }
}

/// One-line description of a variable: name, bounds, and kind. The
/// rendering a diagnostic `Span::Var` points at.
pub fn describe_var(model: &Model, index: usize) -> String {
    let v = VarRef(index);
    let (lo, hi) = model.var_bounds(v);
    let kind = match model.var_kind(v) {
        VarKind::Binary => " (binary)",
        VarKind::Continuous => "",
    };
    format!("{} in [{lo}, {hi}]{kind}", display_name(model, v))
}

/// One-line description of a constraint: `name: expr SENSE rhs`. The
/// rendering a diagnostic `Span::Constraint` points at.
pub fn describe_constraint(model: &Model, index: usize) -> String {
    let c = &model.constraints()[index];
    let label = c
        .name
        .as_deref()
        .map_or_else(|| format!("c{index}"), sanitize);
    let op = match c.sense {
        Sense::Le => "<=",
        Sense::Eq => "=",
        Sense::Ge => ">=",
    };
    // Render with the constant folded back onto the right-hand side, the
    // way the constraint was written.
    let mut lhs = String::new();
    let mut first = true;
    for (v, coef) in c.expr.terms() {
        push_term(&mut lhs, coef, &display_name(model, v), &mut first);
    }
    if first {
        lhs.push('0');
    }
    format!("{label}: {lhs} {op} {}", -c.expr.constant_part())
}

/// One-line description of a complementarity pair: `mult _|_ slack`. The
/// rendering a diagnostic `Span::Complementarity` points at.
pub fn describe_complementarity(model: &Model, index: usize) -> String {
    let c = &model.complementarities()[index];
    format!(
        "{} _|_ {}",
        display_name(model, c.multiplier),
        render_expr(model, &c.slack).trim()
    )
}

fn push_term(out: &mut String, coef: f64, name: &str, first: &mut bool) {
    if coef == 0.0 {
        return;
    }
    if *first {
        if coef < 0.0 {
            out.push_str("- ");
        }
        *first = false;
    } else if coef < 0.0 {
        out.push_str(" - ");
    } else {
        out.push_str(" + ");
    }
    let a = coef.abs();
    if (a - 1.0).abs() < 1e-15 {
        out.push_str(name);
    } else {
        let _ = write!(out, "{a} {name}");
    }
}

/// LP format forbids several characters in names; map them to underscores
/// and bracket-ish digests.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|ch| match ch {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '.' => ch,
            '[' | ']' | ':' | ',' => '_',
            _ => '_',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::Model;

    #[test]
    fn small_model_export() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0).unwrap();
        let z = m.add_binary("z").unwrap();
        m.constrain_named("capacity", LinExpr::from(x) + LinExpr::term(z, 5.0), Sense::Le, 8.0)
            .unwrap();
        m.set_objective(ObjSense::Max, LinExpr::from(x) + 2.0 * z)
            .unwrap();
        let text = to_lp_format(&m);
        assert!(text.contains("Maximize"), "{text}");
        assert!(text.contains("capacity: x + 5 z <= 8"), "{text}");
        assert!(text.contains("0 <= x <= 10"), "{text}");
        assert!(text.contains("Binary\n z"), "{text}");
        assert!(text.ends_with("End\n"), "{text}");
    }

    #[test]
    fn complementarities_listed_as_comments() {
        let mut m = Model::new();
        let lam = m.add_var("lam", 0.0, f64::INFINITY).unwrap();
        let s = m.add_var("s", 0.0, f64::INFINITY).unwrap();
        m.add_complementarity(lam, LinExpr::from(s) + 1.0).unwrap();
        let text = to_lp_format(&m);
        assert!(text.contains("compl0: lam _|_ s + 1"), "{text}");
        // The comment block must precede End, or parsers (and humans
        // skimming to End) never see it.
        let compl_at = text.find("compl0").unwrap();
        let end_at = text.rfind("End\n").unwrap();
        assert!(compl_at < end_at, "{text}");
        assert_eq!(describe_complementarity(&m, 0), "lam _|_ s + 1");
    }

    #[test]
    fn describe_helpers_render_spans() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0).unwrap();
        let z = m.add_binary("z").unwrap();
        m.constrain_named("cap", LinExpr::from(x) + LinExpr::term(z, 5.0), Sense::Le, 8.0)
            .unwrap();
        assert_eq!(describe_var(&m, x.0), "x in [0, 10]");
        assert_eq!(describe_var(&m, z.0), "z in [0, 1] (binary)");
        assert_eq!(describe_constraint(&m, 0), "cap: x + 5 z <= 8");
    }

    #[test]
    fn name_sanitization() {
        let mut m = Model::new();
        let v = m.add_var("dp::f[3][1]", 0.0, 1.0).unwrap();
        m.set_objective(ObjSense::Min, LinExpr::from(v)).unwrap();
        let text = to_lp_format(&m);
        assert!(!text.contains('['), "{text}");
        assert!(!text.contains(':') || text.contains("obj:"), "{text}");
    }

    #[test]
    fn fixed_and_free_bounds() {
        let mut m = Model::new();
        m.add_var("fx", 3.0, 3.0).unwrap();
        m.add_var("fr", f64::NEG_INFINITY, f64::INFINITY).unwrap();
        let text = to_lp_format(&m);
        assert!(text.contains("fx = 3"), "{text}");
        assert!(text.contains("fr free"), "{text}");
    }
}
