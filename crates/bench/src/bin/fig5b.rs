//! Figure 5b — POP's optimality gap vs. the number of partitions and vs.
//! the number of paths per pair.
//!
//! Paper's qualitative claims to check: more partitions → larger gap
//! (capacity fragments further); more paths → somewhat smaller gap (the
//! heuristic can reach more of the fragmented capacity). Pass
//! `--client-split` to rerun the partition sweep with Appendix-A client
//! splitting applied to the evaluation (ablation).

use metaopt_bench::{budget_secs, f, quick_mode, CsvOut};
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_te::{pop::random_partitions, TeInstance};
use metaopt_topology::builtin;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let budget = budget_secs();
    let client_split = std::env::args().any(|a| a == "--client-split");
    let topo = if quick_mode() {
        builtin::swan(1000.0)
    } else {
        builtin::b4(1000.0)
    };
    let name = topo.name().to_string();
    let norm = topo.total_capacity();
    let inst = TeInstance::all_pairs(topo.clone(), 2).unwrap();
    let n_inst = 3;
    println!(
        "Figure 5b: POP gap on {name} ({} instantiations averaged), budget {budget}s per point{}",
        n_inst,
        if client_split { ", with client splitting" } else { "" }
    );

    let mut csv = CsvOut::new(
        "fig5b_pop_sweeps",
        &["sweep", "value", "norm_gap", "status"],
    );

    // Sweep 1: number of partitions (2 paths per pair).
    let parts_sweep: Vec<usize> = if quick_mode() { vec![2, 3] } else { vec![1, 2, 3, 4] };
    for &n_parts in &parts_sweep {
        let mut rng = StdRng::seed_from_u64(50 + n_parts as u64);
        let base = if client_split {
            // Client splitting duplicates pairs before partitioning: model
            // it by evaluating POP on the split instance (Appendix A).
            split_instance(&inst)
        } else {
            inst.clone()
        };
        let partitions = random_partitions(base.n_pairs(), n_parts, n_inst, &mut rng);
        let spec = HeuristicSpec::Pop {
            partitions,
            mode: PopMode::Average,
        };
        let r = find_adversarial_gap(
            &base,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(budget),
        )
        .unwrap();
        println!(
            "  partitions = {n_parts}: normalized gap {:.4} ({:?})",
            r.verified_gap / norm,
            r.status
        );
        csv.row([
            "partitions".into(),
            n_parts.to_string(),
            f(r.verified_gap / norm),
            format!("{:?}", r.status),
        ]);
    }

    // Sweep 2: number of paths per pair (2 partitions).
    let paths_sweep: Vec<usize> = if quick_mode() { vec![1, 2] } else { vec![1, 2, 3, 4] };
    for &k_paths in &paths_sweep {
        let inst_k = TeInstance::all_pairs(topo.clone(), k_paths).unwrap();
        let mut rng = StdRng::seed_from_u64(80 + k_paths as u64);
        let partitions = random_partitions(inst_k.n_pairs(), 2, n_inst, &mut rng);
        let spec = HeuristicSpec::Pop {
            partitions,
            mode: PopMode::Average,
        };
        let r = find_adversarial_gap(
            &inst_k,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(budget),
        )
        .unwrap();
        println!(
            "  paths = {k_paths}: normalized gap {:.4} ({:?})",
            r.verified_gap / norm,
            r.status
        );
        csv.row([
            "paths".into(),
            k_paths.to_string(),
            f(r.verified_gap / norm),
            format!("{:?}", r.status),
        ]);
    }

    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}

/// Appendix-A client splitting applied at the instance level: every pair is
/// split once (two half-volume virtual clients), doubling the pair count.
fn split_instance(inst: &TeInstance) -> TeInstance {
    let mut pairs = Vec::with_capacity(inst.n_pairs() * 2);
    for &p in &inst.pairs {
        pairs.push(p);
        pairs.push(p);
    }
    TeInstance::with_pairs(inst.topo.clone(), pairs, 2).unwrap()
}
