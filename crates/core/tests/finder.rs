//! End-to-end tests of the white-box adversarial gap finder on instances
//! small enough to verify analytically or by brute force.

use metaopt_core::{
    find_adversarial_gap, find_diverse_inputs, ConstrainedSet, Distance, FinderConfig,
    HeuristicSpec, OptEncoding, PopMode,
};
use metaopt_milp::MilpStatus;
use metaopt_te::pop::random_partitions;
use metaopt_te::{eval::gap as eval_gap, Heuristic, TeInstance};
use metaopt_topology::synth::figure1_triangle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fig1() -> TeInstance {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

/// On the Figure-1 triangle with threshold 50, the worst case is
/// analytically d = (50, 100, 100) with gap exactly 50: DP pins the 50-unit
/// 1→3 demand across both links, displacing 50 units of each single-hop
/// demand while only carrying 50 itself.
#[test]
fn dp_figure1_worst_case_is_found_exactly() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let r = find_adversarial_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();
    assert_eq!(r.status, MilpStatus::Optimal, "{r}");
    assert!((r.model_gap - 50.0).abs() < 1e-4, "{r}");
    assert!((r.verified_gap - 50.0).abs() < 1e-4, "{r}");
    assert!(r.certification_error() < 1e-6, "{r}");
    // The discovered demands realize the analytic worst case: d13 = 50
    // (pinned), both one-hop demands large enough to saturate.
    assert!((r.demands[0] - 50.0).abs() < 1e-4, "{:?}", r.demands);
    assert!(r.demands[1] >= 99.0 && r.demands[2] >= 99.0, "{:?}", r.demands);
    // And the independent evaluator agrees.
    let h = Heuristic::DemandPinning { threshold: 50.0 };
    let g = eval_gap(&inst, &h, &r.demands).unwrap();
    assert!((g - 50.0).abs() < 1e-4);
}

/// The PrimalOnly OPT encoding (ablation) reaches the same optimum with
/// fewer complementarity pairs.
#[test]
fn primal_only_matches_kkt() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let kkt_cfg = FinderConfig::default();
    let po_cfg = FinderConfig {
        opt_encoding: OptEncoding::PrimalOnly,
        ..Default::default()
    };
    let a = find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &kkt_cfg).unwrap();
    let b = find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &po_cfg).unwrap();
    assert!((a.model_gap - b.model_gap).abs() < 1e-4, "{a} vs {b}");
    assert!(b.stats.n_sos < a.stats.n_sos, "{:?} vs {:?}", b.stats, a.stats);
}

/// Constraining the pinnable demand to a goalpost caps the achievable gap.
#[test]
fn goalpost_limits_gap() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    // Pin d13 near 30 (±0), leave the others free.
    let cs = ConstrainedSet::unconstrained().near_partial(
        vec![Some(30.0), None, None],
        Distance::Absolute(0.0),
    );
    let r = find_adversarial_gap(&inst, &spec, &cs, &FinderConfig::default()).unwrap();
    assert_eq!(r.status, MilpStatus::Optimal, "{r}");
    assert!((r.model_gap - 30.0).abs() < 1e-4, "{r}");
    assert!((r.demands[0] - 30.0).abs() < 1e-6);
}

/// Intra-input constraint: demands within a tight band of the mean cannot
/// realize the full worst case.
#[test]
fn band_constraint_reduces_gap() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let cs = ConstrainedSet::unconstrained().within_band_of_mean(3, 5.0);
    let r = find_adversarial_gap(&inst, &spec, &cs, &FinderConfig::default()).unwrap();
    assert_eq!(r.status, MilpStatus::Optimal, "{r}");
    assert!(r.model_gap < 50.0 - 1e-6, "{r}");
    assert!(cs.contains(&r.demands, 1e-5), "{:?}", r.demands);
    // Certification still holds under constraints.
    assert!(r.certification_error() < 1e-6, "{r}");
}

/// POP whitebox vs brute force on a tiny line instance: the white-box
/// optimum must dominate every grid point, and its certificate must match
/// the real POP evaluation.
#[test]
fn pop_average_dominates_grid_search() {
    let inst = TeInstance::all_pairs(metaopt_topology::synth::line(3, 10.0), 1).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let partitions = random_partitions(inst.n_pairs(), 2, 2, &mut rng);
    let spec = HeuristicSpec::Pop {
        partitions: partitions.clone(),
        mode: PopMode::Average,
    };
    let cfg = FinderConfig::budgeted(30.0);
    let r = find_adversarial_gap(&inst, &spec, &ConstrainedSet::unconstrained(), &cfg).unwrap();
    assert!(r.verified_gap.is_finite());
    assert!(r.certification_error() < 1e-4, "{r}");

    // Brute force over the {0, 5, 10}^6 grid.
    let h = Heuristic::Pop {
        partitions: partitions.clone(),
    };
    let mut best = f64::NEG_INFINITY;
    let levels = [0.0, 5.0, 10.0];
    let n = inst.n_pairs();
    let mut idx = vec![0usize; n];
    loop {
        let demands: Vec<f64> = idx.iter().map(|&i| levels[i]).collect();
        let g = eval_gap(&inst, &h, &demands).unwrap();
        best = best.max(g);
        // Odometer increment.
        let mut c = 0;
        while c < n {
            idx[c] += 1;
            if idx[c] < levels.len() {
                break;
            }
            idx[c] = 0;
            c += 1;
        }
        if c == n {
            break;
        }
    }
    assert!(
        r.verified_gap >= best - 1e-4,
        "whitebox {} < grid best {}",
        r.verified_gap,
        best
    );
}

/// POP tail-worst objective (sorting network) dominates the average
/// objective: the worst draw is at least as bad as the mean, so the
/// adversary's optimal tail-gap is ≥ its optimal average-gap.
#[test]
fn pop_tail_worst_dominates_average() {
    let inst = TeInstance::all_pairs(metaopt_topology::synth::line(3, 10.0), 1).unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let partitions = random_partitions(inst.n_pairs(), 2, 3, &mut rng);
    let cfg = FinderConfig::budgeted(20.0);
    let avg = find_adversarial_gap(
        &inst,
        &HeuristicSpec::Pop {
            partitions: partitions.clone(),
            mode: PopMode::Average,
        },
        &ConstrainedSet::unconstrained(),
        &cfg,
    )
    .unwrap();
    let tail = find_adversarial_gap(
        &inst,
        &HeuristicSpec::Pop {
            partitions,
            mode: PopMode::TailWorst { rank: 0 },
        },
        &ConstrainedSet::unconstrained(),
        &cfg,
    )
    .unwrap();
    assert!(
        tail.verified_gap >= avg.verified_gap - 1e-5,
        "tail {} < avg {}",
        tail.verified_gap,
        avg.verified_gap
    );
    // Both certified.
    assert!(avg.certification_error() < 1e-5, "{avg}");
    assert!(tail.certification_error() < 1e-5, "{tail}");
}

/// Diverse-input search returns inputs separated by the exclusion radius.
#[test]
fn diverse_inputs_are_separated() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let rs = find_diverse_inputs(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
        2,
        20.0,
    )
    .unwrap();
    assert_eq!(rs.len(), 2);
    let linf: f64 = rs[0]
        .demands
        .iter()
        .zip(&rs[1].demands)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    assert!(linf >= 20.0 - 1e-4, "inputs too close: {linf}");
    // Both inputs still realize real gaps.
    assert!(rs[0].verified_gap >= rs[1].verified_gap - 1e-6);
    assert!(rs[1].verified_gap > 0.0);
}

/// The finder's trajectory is monotone and its Figure-6 stats are sane.
#[test]
fn stats_and_trajectory_shape() {
    let inst = fig1();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let r = find_adversarial_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();
    assert!(r.stats.n_sos > 0);
    assert!(r.stats.n_binary >= 3); // one pin indicator per pair
    assert!(r.stats.n_vars > r.stats.n_binary);
    for w in r.trajectory.windows(2) {
        assert!(w[1].0 >= w[0].0);
        assert!(w[1].1 >= w[0].1 - 1e-9);
    }
}
