//@ rel: crates/campaign/src/runner.rs
//@ expect: AN402 4:1
fn tock() -> u64 {
    // an:allow(AN001)
    42
}
