//! Figure 4a — DP's optimality gap vs. pin threshold on the three
//! production topologies (SWAN, B4, Abilene).
//!
//! Paper's qualitative claims to check: the gap *grows with the threshold*
//! (more demands get pinned), and topologies with longer average shortest
//! paths suffer more.

use metaopt_bench::{budget_secs, f, quick_mode, CsvOut};
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt_te::TeInstance;
use metaopt_topology::builtin;

fn main() {
    let budget = budget_secs();
    let thresholds_pct: Vec<f64> = if quick_mode() {
        vec![2.5, 5.0, 10.0]
    } else {
        vec![2.5, 5.0, 7.5, 10.0, 12.5, 15.0]
    };
    println!(
        "Figure 4a: DP gap vs threshold (% of capacity), budget {budget}s per point"
    );
    let mut csv = CsvOut::new(
        "fig4a_dp_threshold",
        &["topology", "threshold_pct", "norm_gap", "status"],
    );
    for topo in builtin::production_suite() {
        let name = topo.name().to_string();
        let cap = 1000.0;
        let norm = topo.total_capacity();
        let inst = TeInstance::all_pairs(topo, 2).unwrap();
        for &pct in &thresholds_pct {
            let spec = HeuristicSpec::DemandPinning {
                threshold: pct / 100.0 * cap,
            };
            let r = find_adversarial_gap(
                &inst,
                &spec,
                &ConstrainedSet::unconstrained(),
                &FinderConfig::budgeted(budget),
            )
            .unwrap();
            println!(
                "  {name:<8} T={pct:>5.1}%  normalized gap {:.4}  ({:?}, {} nodes)",
                r.verified_gap / norm,
                r.status,
                r.nodes
            );
            csv.row([
                name.clone(),
                f(pct),
                f(r.verified_gap / norm),
                format!("{:?}", r.status),
            ]);
        }
    }
    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}
