#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-milp
//!
//! Branch-and-bound for the mixed structures the paper's single-shot
//! rewrite produces (§3.1): linear programs augmented with
//!
//! * **binary variables** (from big-M/indicator encodings of conditional
//!   heuristics such as Demand Pinning, §3.2), and
//! * **complementarity pairs** `λ · s = 0` (from the KKT rewrite's
//!   complementary slackness) — the "SOS constraints" of the paper's
//!   Figure 6, branched on disjunctively exactly like Gurobi's SOS1
//!   feature: one child fixes `λ = 0`, the other fixes `s = 0`.
//!
//! The search is a best-bound/diving hybrid over warm-started dual-simplex
//! re-solves (`metaopt-lp`), with:
//!
//! * an **incumbent callback** so domain layers can turn any relaxation
//!   point into a true feasible solution (the adversarial-gap layer
//!   evaluates the candidate demands against the *real* heuristic — the
//!   reason good solutions appear quickly, mirroring the paper's
//!   observation about solver behaviour),
//! * the paper's §3.3 **stop rules**: wall-clock budget, relative
//!   primal-dual gap, and the stall rule ("incremental progress in a given
//!   time window smaller than 0.5%"),
//! * full trajectory recording (best objective vs. time) for Figure 3,
//! * three interchangeable tree-search engines (see [`ParallelMode`]): the
//!   serial search, a **deterministic parallel** engine whose certified
//!   results and checkpoints are bit-identical at any thread count, and a
//!   throughput-oriented **work-stealing** engine — both parallel engines
//!   warm-start node LPs from parent [`metaopt_lp::Basis`] snapshots.

mod metrics;
mod parallel;
mod solver;
mod sweep;

pub use metrics::MilpMetrics;
pub use parallel::{env_threads, ParallelMode};
pub use solver::{
    solve, solve_resumable, solve_with_callback, Checkpoint, CheckpointParseError,
    IncumbentCallback, LpSolveStats, MilpConfig, MilpSolution, MilpStatus,
};
pub use sweep::{binary_sweep, SweepMachine, SweepOutcome};

pub use metaopt_lp::FactorBackend;

/// The workspace-wide certification tolerance: a witness counts for a
/// threshold `g` when its re-measured value reaches `g − CERT_TOL`, and
/// the branch-and-bound target-objective stop rule accepts an incumbent
/// within `CERT_TOL` of the requested target. One named constant so the
/// sweep's acceptance test, the finder's witness vetting, and the solver's
/// early-stop rule can never drift apart.
pub const CERT_TOL: f64 = 1e-6;

pub use metaopt_resilience::{Budget, FaultPlan, FaultSite, SolverFault};

/// Errors raised by the branch-and-bound layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// The underlying LP solver failed irrecoverably.
    Lp(metaopt_lp::LpError),
    /// Model could not be compiled.
    Model(String),
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Lp(e) => write!(f, "lp failure: {e}"),
            MilpError::Model(s) => write!(f, "model failure: {s}"),
        }
    }
}

impl std::error::Error for MilpError {}

impl From<metaopt_lp::LpError> for MilpError {
    fn from(e: metaopt_lp::LpError) -> Self {
        MilpError::Lp(e)
    }
}

impl From<metaopt_model::ModelError> for MilpError {
    fn from(e: metaopt_model::ModelError) -> Self {
        MilpError::Model(e.to_string())
    }
}

/// Result alias for this crate.
pub type MilpResult<T> = Result<T, MilpError>;
