//! Unit tests for the bounded-variable simplex on hand-checked LPs.

use metaopt_lp::{LpProblem, RowSense, Simplex, SolveStatus, INF, NEG_INF};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!(
        (a - b).abs() <= tol,
        "expected {b}, got {a} (diff {})",
        (a - b).abs()
    );
}

#[test]
fn tiny_maximization() {
    // max x + y  s.t. x + 2y <= 4, x <= 3, y <= 3, x,y >= 0
    // optimum: x = 3, y = 0.5, value 3.5.
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, 3.0, -1.0).unwrap();
    let y = p.add_var(0.0, 3.0, -1.0).unwrap();
    p.add_row(RowSense::Le, 4.0, [(x, 1.0), (y, 2.0)]).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_close(sol.objective, -3.5, 1e-8);
    assert_close(sol.x[0], 3.0, 1e-8);
    assert_close(sol.x[1], 0.5, 1e-8);
}

#[test]
fn infeasible_box_vs_row() {
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, 2.0, 1.0).unwrap();
    p.add_row(RowSense::Ge, 5.0, [(x, 1.0)]).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Infeasible);
}

#[test]
fn infeasible_conflicting_rows() {
    let mut p = LpProblem::new();
    let x = p.add_var(NEG_INF, INF, 0.0).unwrap();
    let y = p.add_var(NEG_INF, INF, 1.0).unwrap();
    p.add_row(RowSense::Eq, 1.0, [(x, 1.0), (y, 1.0)]).unwrap();
    p.add_row(RowSense::Eq, 3.0, [(x, 1.0), (y, 1.0)]).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Infeasible);
}

#[test]
fn unbounded_ray() {
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, INF, -1.0).unwrap();
    let y = p.add_var(0.0, INF, 0.0).unwrap();
    p.add_row(RowSense::Le, 10.0, [(y, 1.0)]).unwrap();
    let _ = x;
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Unbounded);
}

#[test]
fn equality_rows_and_free_vars() {
    // min x + y  s.t. x + y = 2, x − y = 0, both free → x = y = 1.
    let mut p = LpProblem::new();
    let x = p.add_var(NEG_INF, INF, 1.0).unwrap();
    let y = p.add_var(NEG_INF, INF, 1.0).unwrap();
    p.add_row(RowSense::Eq, 2.0, [(x, 1.0), (y, 1.0)]).unwrap();
    p.add_row(RowSense::Eq, 0.0, [(x, 1.0), (y, -1.0)]).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_close(sol.x[0], 1.0, 1e-8);
    assert_close(sol.x[1], 1.0, 1e-8);
    assert_close(sol.objective, 2.0, 1e-8);
}

#[test]
fn negative_lower_bounds() {
    // min x subject to x >= -5 (box), x + y >= -3, y in [0, 1].
    let mut p = LpProblem::new();
    let x = p.add_var(-5.0, INF, 1.0).unwrap();
    let y = p.add_var(0.0, 1.0, 0.0).unwrap();
    p.add_row(RowSense::Ge, -3.0, [(x, 1.0), (y, 1.0)]).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_close(sol.x[0], -4.0, 1e-8);
    assert_close(sol.x[1], 1.0, 1e-8);
}

#[test]
fn range_rows() {
    // max x with 1 <= x + y <= 3, y fixed at 0.5 → x = 2.5.
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, INF, -1.0).unwrap();
    let y = p.add_var(0.5, 0.5, 0.0).unwrap();
    p.add_range_row(1.0, 3.0, [(x, 1.0), (y, 1.0)]).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_close(sol.x[0], 2.5, 1e-8);
}

#[test]
fn degenerate_transportation() {
    // Classic degenerate LP: multiple tied vertices.
    // min Σ c_ij x_ij with balanced supply/demand of equal sizes.
    let mut p = LpProblem::new();
    let c = [[4.0, 1.0, 3.0], [2.0, 5.0, 2.0], [3.0, 2.0, 1.0]];
    let mut xs = Vec::new();
    for row in &c {
        for &cij in row {
            xs.push(p.add_var(0.0, INF, cij).unwrap());
        }
    }
    let supply = [10.0, 10.0, 10.0];
    let demand = [10.0, 10.0, 10.0];
    for i in 0..3 {
        p.add_row(
            RowSense::Eq,
            supply[i],
            (0..3).map(|j| (xs[i * 3 + j], 1.0)),
        )
        .unwrap();
    }
    for j in 0..3 {
        p.add_row(
            RowSense::Eq,
            demand[j],
            (0..3).map(|i| (xs[i * 3 + j], 1.0)),
        )
        .unwrap();
    }
    let sol = Simplex::new(&p).solve().unwrap();
    assert_eq!(sol.status, SolveStatus::Optimal);
    // Optimal assignment: x_01 = 10 (cost 1), x_10/x_12 split cost 2,
    // x_22 = 10 (cost 1) → min cost 10·1 + 10·2 + 10·1 = 40.
    assert_close(sol.objective, 40.0, 1e-6);
}

#[test]
fn warm_restart_matches_cold() {
    // Solve, tighten a bound, resolve via dual simplex; compare with a cold
    // solve of the modified problem.
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, 10.0, -2.0).unwrap();
    let y = p.add_var(0.0, 10.0, -3.0).unwrap();
    let z = p.add_var(0.0, 10.0, -1.0).unwrap();
    p.add_row(RowSense::Le, 12.0, [(x, 1.0), (y, 2.0), (z, 1.0)])
        .unwrap();
    p.add_row(RowSense::Le, 8.0, [(x, 1.0), (y, 1.0)]).unwrap();

    let mut warm = Simplex::new(&p);
    let first = warm.solve().unwrap();
    assert_eq!(first.status, SolveStatus::Optimal);

    warm.set_var_bounds(y, 0.0, 2.0).unwrap();
    let resolved = warm.resolve().unwrap();

    let mut p2 = p.clone();
    p2.set_bounds(y, 0.0, 2.0).unwrap();
    let cold = Simplex::new(&p2).solve().unwrap();

    assert_eq!(resolved.status, SolveStatus::Optimal);
    assert_close(resolved.objective, cold.objective, 1e-7);
}

#[test]
fn warm_restart_detects_infeasible() {
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, 10.0, -1.0).unwrap();
    let y = p.add_var(0.0, 10.0, -1.0).unwrap();
    p.add_row(RowSense::Ge, 5.0, [(x, 1.0), (y, 1.0)]).unwrap();
    let mut sx = Simplex::new(&p);
    assert_eq!(sx.solve().unwrap().status, SolveStatus::Optimal);
    sx.set_var_bounds(x, 0.0, 1.0).unwrap();
    sx.set_var_bounds(y, 0.0, 1.0).unwrap();
    assert_eq!(sx.resolve().unwrap().status, SolveStatus::Infeasible);
}

#[test]
fn warm_restart_after_relaxation() {
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, 1.0, -1.0).unwrap();
    p.add_row(RowSense::Le, 100.0, [(x, 1.0)]).unwrap();
    let mut sx = Simplex::new(&p);
    assert_close(sx.solve().unwrap().objective, -1.0, 1e-9);
    // Relax the box: optimum should chase the new bound.
    sx.set_var_bounds(x, 0.0, 50.0).unwrap();
    let sol = sx.resolve().unwrap();
    assert_eq!(sol.status, SolveStatus::Optimal);
    assert_close(sol.objective, -50.0, 1e-7);
}

#[test]
fn duals_satisfy_complementary_slackness() {
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0
    // optimum x = 4, y = 0 (value 12); first row binding.
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, INF, -3.0).unwrap();
    let y = p.add_var(0.0, INF, -2.0).unwrap();
    let r1 = p.add_row(RowSense::Le, 4.0, [(x, 1.0), (y, 1.0)]).unwrap();
    let r2 = p.add_row(RowSense::Le, 6.0, [(x, 1.0), (y, 3.0)]).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_close(sol.objective, -12.0, 1e-8);
    // Slack row ⇒ zero dual.
    assert_close(sol.duals[r2.0], 0.0, 1e-8);
    // Binding row dual carries the full objective: yᵀb = obj.
    assert_close(sol.duals[r1.0] * 4.0 + sol.duals[r2.0] * 6.0, -12.0, 1e-7);
}

#[test]
fn fixed_variables_are_respected() {
    let mut p = LpProblem::new();
    let x = p.add_var(2.0, 2.0, -1.0).unwrap();
    let y = p.add_var(0.0, 10.0, -1.0).unwrap();
    p.add_row(RowSense::Le, 5.0, [(x, 1.0), (y, 1.0)]).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_close(sol.x[0], 2.0, 1e-9);
    assert_close(sol.x[1], 3.0, 1e-8);
}

#[test]
fn objective_offset_reported() {
    let mut p = LpProblem::new();
    let x = p.add_var(0.0, 1.0, -1.0).unwrap();
    let _ = x;
    p.add_obj_offset(10.0).unwrap();
    let sol = Simplex::new(&p).solve().unwrap();
    assert_close(sol.objective, 9.0, 1e-9);
}

#[test]
fn larger_random_but_fixed_lp_is_stable() {
    // A moderately sized LP with a known construction: maximize total flow
    // through a 20-link chain; the bottleneck (capacity 7) caps the flow.
    let mut p = LpProblem::new();
    let n = 20;
    let mut caps = vec![50.0; n];
    caps[13] = 7.0;
    let f = p.add_var(0.0, INF, -1.0).unwrap();
    for (i, c) in caps.iter().enumerate() {
        p.add_row(RowSense::Le, *c, [(f, 1.0)]).unwrap();
        let _ = i;
    }
    let sol = Simplex::new(&p).solve().unwrap();
    assert_close(sol.objective, -7.0, 1e-8);
}
