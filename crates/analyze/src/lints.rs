//! The ANxxx source lints.
//!
//! | Code  | Family       | What it denies                                         |
//! |-------|--------------|--------------------------------------------------------|
//! | AN001 | determinism  | `Instant::now`/`SystemTime::now` outside the clock module |
//! | AN002 | determinism  | `HashMap`/`HashSet` in certified-path crates            |
//! | AN003 | determinism  | float-literal `==`/`!=` in certification layers         |
//! | AN101 | concurrency  | condvar `notify_*` with no lock acquired in scope       |
//! | AN102 | concurrency  | a `Mutex` field without a `// lock-order:` annotation   |
//! | AN103 | concurrency  | a cycle (or unknown node) in the declared lock order    |
//! | AN104 | concurrency  | a spawn site with no `catch_unwind` containment         |
//! | AN105 | observability| raw `println!`/`eprintln!` in first-party library code  |
//! | AN106 | containment  | a `Command::new` process spawn outside the sandbox module |
//! | AN201 | panic-free   | `unwrap`/`expect` in hot paths (lock-poison idiom exempt) |
//! | AN202 | panic-free   | `panic!`-family macros in hot paths                     |
//! | AN203 | panic-free   | slice indexing in supervisory request paths             |
//! | AN401 | hygiene      | a stale `an:allow` suppressing nothing                  |
//! | AN402 | hygiene      | an `an:allow` without a justification                   |
//!
//! Scopes are deliberate, not uniform — see `DESIGN.md` §14 for each
//! family's rationale and the per-crate scoping table.

use crate::scan::SourceFile;
use crate::{Diagnostic, Report, Severity, Span};

/// The module whose raw `Instant::now()` reads are sanctioned: every
/// other supervisory read must go through the injected `Clock`. The
/// clock moved from `metaopt-campaign` to `metaopt-obs` (PR 8) so the
/// tracer can share it; `crates/campaign/src/clock.rs` is now a plain
/// re-export with no raw reads of its own.
pub const APPROVED_CLOCK_MODULE: &str = "crates/obs/src/clock.rs";

/// A parsed `// an:allow(ANxxx): why` suppression.
#[derive(Debug)]
struct Allow {
    code: String,
    /// 1-based line of the comment itself.
    line: usize,
    /// 1-based line the suppression covers.
    target: usize,
    used: bool,
}

/// A declared `// lock-order:` annotation (AN102/AN103).
#[derive(Debug)]
pub struct LockDecl {
    /// Declared lock name (`ws.frontier`).
    pub name: String,
    /// Locks this one may be held while acquiring.
    pub succs: Vec<String>,
    /// Where declared.
    pub span: Span,
}

/// Runs every per-file lint plus the cross-file lock-order cycle check.
pub fn run(sources: &[SourceFile]) -> Report {
    let mut report = Report::new();
    let mut locks: Vec<LockDecl> = Vec::new();
    for f in sources {
        run_file(f, &mut report, &mut locks);
    }
    lock_cycles(&locks, &mut report);
    report
}

fn diag(code: &'static str, f: &SourceFile, line: usize, col: usize, msg: String) -> Diagnostic {
    Diagnostic {
        code,
        severity: Severity::Error,
        span: Span {
            file: f.rel.to_string(),
            line,
            col,
        },
        message: msg,
    }
}

fn run_file(f: &SourceFile, report: &mut Report, locks: &mut Vec<LockDecl>) {
    let mut allows = collect_allows(f, report);
    let mut fired: Vec<Diagnostic> = Vec::new();

    an001_time(f, &mut fired);
    an002_hash_collections(f, &mut fired);
    an003_float_eq(f, &mut fired);
    an101_notify_without_lock(f, &mut fired);
    an102_mutex_annotations(f, &mut fired, locks);
    an104_spawn_containment(f, &mut fired);
    an105_raw_print(f, &mut fired);
    an106_process_spawn(f, &mut fired);
    an201_unwrap(f, &mut fired);
    an202_panic_macros(f, &mut fired);
    an203_indexing(f, &mut fired);

    for d in fired {
        let suppressed = allows
            .iter_mut()
            .find(|a| a.code == d.code && a.target == d.span.line);
        match suppressed {
            Some(a) => a.used = true,
            None => report.push(d),
        }
    }
    for a in &allows {
        if !a.used {
            report.push(diag(
                "AN401",
                f,
                a.line,
                1,
                format!(
                    "stale suppression: `an:allow({})` masks no diagnostic on line {}; remove it",
                    a.code, a.target
                ),
            ));
        }
    }
}

/// Parses every `an:allow(ANxxx): why` comment; malformed ones become
/// AN402 diagnostics immediately.
fn collect_allows(f: &SourceFile, report: &mut Report) -> Vec<Allow> {
    let mut out = Vec::new();
    for (idx, line) in f.lines.iter().enumerate() {
        let Some(comment) = &line.comment else {
            continue;
        };
        let Some(pos) = comment.find("an:allow(") else {
            continue;
        };
        let rest = &comment[pos + "an:allow(".len()..];
        let Some(close) = rest.find(')') else {
            report.push(diag(
                "AN402",
                f,
                idx + 1,
                1,
                "malformed `an:allow` (missing closing parenthesis)".into(),
            ));
            continue;
        };
        let code = rest[..close].trim().to_string();
        let well_formed = code.len() == 5
            && code.starts_with("AN")
            && code[2..].bytes().all(|b| b.is_ascii_digit());
        if !well_formed {
            report.push(diag(
                "AN402",
                f,
                idx + 1,
                1,
                format!("malformed `an:allow` code `{code}` (expected ANxxx)"),
            ));
            continue;
        }
        let reason = rest[close + 1..].trim_start_matches(':').trim();
        if reason.is_empty() {
            report.push(diag(
                "AN402",
                f,
                idx + 1,
                1,
                format!(
                    "`an:allow({code})` carries no justification; write `an:allow({code}): why`"
                ),
            ));
            continue;
        }
        // The suppression covers this line if it has code, otherwise the
        // next line that does (skipping continuation comments).
        let target = if !line.code.trim().is_empty() {
            idx + 1
        } else {
            let mut t = idx + 1;
            while t < f.lines.len() && f.lines[t].code.trim().is_empty() {
                t += 1;
            }
            t + 1
        };
        out.push(Allow {
            code,
            line: idx + 1,
            target,
            used: false,
        });
    }
    out
}

// ---------------------------------------------------------------------
// AN0xx — determinism
// ---------------------------------------------------------------------

fn an001_time(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    if f.crate_name == "bench" || f.rel == APPROVED_CLOCK_MODULE {
        // bench *measures* wall time; the clock module *is* the clock.
        return;
    }
    for (line, code) in f.code_lines() {
        for needle in ["Instant::now()", "SystemTime::now()"] {
            for col in find_all(code, needle) {
                fired.push(diag(
                    "AN001",
                    f,
                    line,
                    col + 1,
                    format!(
                        "raw `{needle}` outside `{APPROVED_CLOCK_MODULE}`: route supervisory \
                         time through the injected `Clock`, or justify a deliberate wall-clock \
                         read",
                    ),
                ));
            }
        }
    }
}

const CERTIFIED_CRATES: [&str; 9] = [
    "lp", "milp", "model", "core", "te", "topology", "campaign", "server", "obs",
];

/// Crates where AN003 applies. `lp` and `model` are deliberately out of
/// scope: exact-representation predicates (`x != 0.0` sparsity checks,
/// `coef == 0.0` term elision) are the idiom of simplex kernels and
/// expression rewriting, and are well-defined on IEEE-754 — the lint
/// targets *decision* comparisons in the certification layers above.
const FLOAT_EQ_CRATES: [&str; 6] = ["milp", "core", "te", "topology", "campaign", "server"];

fn an002_hash_collections(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    if !CERTIFIED_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    for (line, code) in f.code_lines() {
        if code.trim_start().starts_with("use ") {
            continue;
        }
        for needle in ["HashMap", "HashSet"] {
            for col in find_word(code, needle) {
                fired.push(diag(
                    "AN002",
                    f,
                    line,
                    col + 1,
                    format!(
                        "`{needle}` in a certified-path crate: iteration order is \
                         nondeterministic (and differs across processes), which breaks \
                         bit-stable replay; use `BTreeMap`/`BTreeSet`, or justify that this \
                         collection is never iterated",
                    ),
                ));
            }
        }
    }
}

fn an003_float_eq(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    if !FLOAT_EQ_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    for (line, code) in f.code_lines() {
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i + 1 < chars.len() {
            let op = match (chars[i], chars[i + 1]) {
                ('=', '=') if i == 0 || !matches!(chars[i - 1], '=' | '!' | '<' | '>') => "==",
                ('!', '=') => "!=",
                _ => {
                    i += 1;
                    continue;
                }
            };
            if float_literal_adjacent(&chars, i) {
                fired.push(diag(
                    "AN003",
                    f,
                    line,
                    i + 1,
                    format!(
                        "float-literal `{op}` comparison in a certification layer: exact \
                         equality on computed floats is almost always a tolerance bug; compare \
                         against an epsilon, or justify the exactness",
                    ),
                ));
            }
            i += 2;
        }
    }
}

/// Whether the token just before or just after the 2-char operator at
/// `i` is a float literal (digits containing a `.`).
fn float_literal_adjacent(chars: &[char], i: usize) -> bool {
    let is_float = |tok: &str| {
        let t = tok.trim_end_matches("f64").trim_end_matches("f32");
        !t.is_empty()
            && t.contains('.')
            && t.chars().all(|c| c.is_ascii_digit() || c == '.' || c == '_')
            && t.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-')
    };
    // Right operand.
    let mut j = i + 2;
    while j < chars.len() && chars[j] == ' ' {
        j += 1;
    }
    let mut right = String::new();
    if chars.get(j) == Some(&'-') {
        right.push('-');
        j += 1;
    }
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '.' || chars[j] == '_') {
        right.push(chars[j]);
        j += 1;
    }
    if is_float(right.trim_start_matches('-')) {
        return true;
    }
    // Left operand.
    let mut k = i;
    while k > 0 && chars[k - 1] == ' ' {
        k -= 1;
    }
    let mut left = String::new();
    while k > 0 && (chars[k - 1].is_alphanumeric() || chars[k - 1] == '.' || chars[k - 1] == '_') {
        left.insert(0, chars[k - 1]);
        k -= 1;
    }
    is_float(&left)
}

// ---------------------------------------------------------------------
// AN1xx — concurrency
// ---------------------------------------------------------------------

fn an101_notify_without_lock(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    for (line, code) in f.code_lines() {
        for needle in [".notify_one(", ".notify_all("] {
            for col in find_all(code, needle) {
                let Some(func) = f.enclosing_fn(line) else {
                    continue;
                };
                let locked_before = (func.start..=line).any(|l| {
                    f.lines
                        .get(l - 1)
                        .is_some_and(|ln| ln.code.contains(".lock("))
                });
                if !locked_before {
                    fired.push(diag(
                        "AN101",
                        f,
                        line,
                        col + 1,
                        format!(
                            "condvar notify in `{}` with no lock acquired in scope: a notify \
                             that can run entirely inside a waiter's check-to-wait window is \
                             the PR 5 lost-wakeup shape; store the predicate under the guarded \
                             lock first (see DESIGN.md §14)",
                            func.name
                        ),
                    ));
                }
            }
        }
    }
}

fn an102_mutex_annotations(
    f: &SourceFile,
    fired: &mut Vec<Diagnostic>,
    locks: &mut Vec<LockDecl>,
) {
    for (line, code) in f.code_lines() {
        let Some(col) = mutex_field_col(code) else {
            continue;
        };
        // Look for `lock-order:` on this line or in the contiguous
        // comment block directly above.
        let mut ann: Option<String> = None;
        if let Some(c) = &f.lines[line - 1].comment {
            if c.contains("lock-order:") {
                ann = Some(c.clone());
            }
        }
        let mut up = line - 1;
        while ann.is_none() && up > 0 {
            let l = &f.lines[up - 1];
            if !l.code.trim().is_empty() || l.comment.is_none() {
                break;
            }
            if l.comment.as_deref().is_some_and(|c| c.contains("lock-order:")) {
                ann = l.comment.clone();
            }
            up -= 1;
        }
        match ann {
            None => fired.push(diag(
                "AN102",
                f,
                line,
                col + 1,
                "`Mutex` field without a `// lock-order: <name> [-> <held-while-acquiring>…]` \
                 annotation; declare its place in the global lock order"
                    .into(),
            )),
            Some(text) => {
                let payload = text
                    .split("lock-order:")
                    .nth(1)
                    .unwrap_or("")
                    .split('(')
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                let (name, succs) = match payload.split_once("->") {
                    None => (payload.clone(), Vec::new()),
                    Some((n, s)) => (
                        n.trim().to_string(),
                        s.split(',').map(|x| x.trim().to_string()).collect(),
                    ),
                };
                if name.is_empty() {
                    fired.push(diag(
                        "AN102",
                        f,
                        line,
                        col + 1,
                        "empty `lock-order:` annotation".into(),
                    ));
                } else {
                    locks.push(LockDecl {
                        name,
                        succs,
                        span: Span {
                            file: f.rel.clone(),
                            line,
                            col: col + 1,
                        },
                    });
                }
            }
        }
    }
}

/// Column of a struct-field `Mutex<…>` declaration on this line, if any.
fn mutex_field_col(code: &str) -> Option<usize> {
    let col = find_all(code, ": Mutex<")
        .into_iter()
        .next()
        .or_else(|| find_all(code, ": std::sync::Mutex<").into_iter().next())?;
    // `let x: Mutex<...>` locals and fn params are not fields.
    let trimmed = code.trim_start();
    if trimmed.starts_with("let ") || trimmed.starts_with("fn ") || code.contains("-> ") {
        return None;
    }
    Some(col)
}

/// Cross-file cycle + unknown-node check over the declared lock order.
/// Deliberately unsuppressable: a real cycle is a deadlock waiting for
/// the right interleaving, and must be fixed, not allowed.
fn lock_cycles(locks: &[LockDecl], report: &mut Report) {
    use std::collections::BTreeMap;
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut where_decl: BTreeMap<&str, &Span> = BTreeMap::new();
    for l in locks {
        adj.entry(l.name.as_str()).or_default();
        where_decl.entry(l.name.as_str()).or_insert(&l.span);
        for s in &l.succs {
            adj.entry(l.name.as_str()).or_default().push(s.as_str());
        }
    }
    for l in locks {
        for s in &l.succs {
            if !where_decl.contains_key(s.as_str()) {
                report.push(Diagnostic {
                    code: "AN103",
                    severity: Severity::Error,
                    span: l.span.clone(),
                    message: format!(
                        "lock-order successor `{s}` of `{}` is not declared anywhere; \
                         annotate that Mutex or fix the name",
                        l.name
                    ),
                });
            }
        }
    }
    // DFS 3-color cycle detection, deterministic order.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: BTreeMap<&str, Color> = adj.keys().map(|k| (*k, Color::White)).collect();
    let names: Vec<&str> = adj.keys().copied().collect();
    for root in names {
        if color[root] != Color::White {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        // (node, next-succ-index) explicit DFS so we can report the path.
        let mut stack: Vec<(&str, usize)> = vec![(root, 0)];
        *color.get_mut(root).expect("known node") = Color::Grey;
        path.push(root);
        while let Some((node, next)) = stack.pop() {
            let succs = &adj[node];
            if next < succs.len() {
                stack.push((node, next + 1));
                let s = succs[next];
                match color.get(s).copied() {
                    Some(Color::White) => {
                        *color.get_mut(s).expect("known node") = Color::Grey;
                        path.push(s);
                        stack.push((s, 0));
                    }
                    Some(Color::Grey) => {
                        let start = path.iter().position(|n| n == &s).unwrap_or(0);
                        let mut cycle: Vec<&str> = path[start..].to_vec();
                        cycle.push(s);
                        let span = where_decl.get(s).map_or_else(
                            || Span {
                                file: "<unknown>".into(),
                                line: 1,
                                col: 1,
                            },
                            |sp| (*sp).clone(),
                        );
                        report.push(Diagnostic {
                            code: "AN103",
                            severity: Severity::Error,
                            span,
                            message: format!(
                                "declared lock order contains a cycle: {} — two threads \
                                 taking these locks in opposite orders deadlock",
                                cycle.join(" -> ")
                            ),
                        });
                    }
                    _ => {}
                }
            } else {
                *color.get_mut(node).expect("known node") = Color::Black;
                path.pop();
            }
        }
    }
}

fn an104_spawn_containment(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    for (line, code) in f.code_lines() {
        let mut cols: Vec<usize> = find_all(code, "thread::spawn(");
        cols.extend(find_all(code, ".spawn("));
        cols.sort_unstable();
        cols.dedup();
        // `thread::spawn(` also contains no `.spawn(`; dedup by the `(`.
        let mut seen_paren = std::collections::BTreeSet::new();
        for col in cols {
            let open = code[col..].find('(').map_or(col, |p| col + p);
            if !seen_paren.insert(open) {
                continue;
            }
            let region = paren_region(f, line, open);
            if region.contains("catch_unwind") {
                continue;
            }
            if called_fns(&region)
                .iter()
                .any(|name| fn_body_contains(f, name, "catch_unwind"))
            {
                continue;
            }
            fired.push(diag(
                "AN104",
                f,
                line,
                col + 1,
                "spawned worker without `catch_unwind` containment: a panic here unwinds \
                 the whole thread and can leak slots or wedge supervisors; contain it (or \
                 justify where the containment actually lives)"
                    .into(),
            ));
        }
    }
}

/// Library code that may bypass the obs structured event API. Binaries
/// own their stdout/stderr contract outright (drill scripts parse it);
/// the `obs` crate is the sanctioned emit site (`Tracer::log_stderr`
/// ends in an `eprintln!`); `xtask` and `analyze` are repo tooling whose
/// whole job is printing reports; the vendored subsets are not ours.
fn an105_exempt(f: &SourceFile) -> bool {
    matches!(f.crate_name.as_str(), "obs" | "xtask" | "analyze")
        || f.rel.contains("/bin/")
        || f.rel.ends_with("/main.rs")
}

fn an105_raw_print(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    if an105_exempt(f) {
        return;
    }
    for (line, code) in f.code_lines() {
        for needle in ["println!(", "eprintln!("] {
            // `find_word` so `println!(` does not also fire inside every
            // `eprintln!(`.
            for col in find_word(code, needle.trim_end_matches('(')) {
                if !code[col..].starts_with(needle) {
                    continue;
                }
                fired.push(diag(
                    "AN105",
                    f,
                    line,
                    col + 1,
                    format!(
                        "raw `{}` in first-party library code: route operator-facing \
                         output through the obs event API (`Tracer::log_stderr` keeps \
                         stderr byte-stable while also feeding the flight recorder), or \
                         justify the direct write",
                        needle.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}

/// The one sanctioned process-spawn site (AN106): the sandbox
/// supervisor, which pairs every child it creates with heartbeat
/// liveness, wall/RSS limits, and lease fencing. A `Command` built
/// anywhere else escapes all of that containment.
pub const APPROVED_SPAWN_MODULE: &str = "crates/campaign/src/sandbox.rs";

fn an106_process_spawn(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    // `xtask` is repo tooling whose whole job is driving `cargo`; the
    // sandbox module is the supervisor itself.
    if f.crate_name == "xtask" || f.rel == APPROVED_SPAWN_MODULE {
        return;
    }
    for (line, code) in f.code_lines() {
        for col in find_all(code, "Command::new(") {
            fired.push(diag(
                "AN106",
                f,
                line,
                col + 1,
                format!(
                    "raw process spawn outside the sandbox supervisor: children \
                     created here have no heartbeat, no wall/RSS limits, and no \
                     fencing token, so a runaway or zombie escapes the blast-radius \
                     containment — spawn through `{APPROVED_SPAWN_MODULE}`, or \
                     justify the exception"
                ),
            ));
        }
    }
}

/// The text of the parenthesized region opening at (1-based `line`,
/// 0-based byte `open` pointing at `(`), joined across lines.
fn paren_region(f: &SourceFile, line: usize, open: usize) -> String {
    let mut out = String::new();
    let mut depth = 0i64;
    let mut l = line - 1;
    let mut start = open;
    while l < f.lines.len() {
        let code = &f.lines[l].code;
        for (i, c) in code.char_indices().skip(start) {
            let _ = i;
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return out;
                    }
                }
                _ => {}
            }
            out.push(c);
        }
        out.push('\n');
        l += 1;
        start = 0;
    }
    out
}

/// Identifiers called as `name(` within `region`.
fn called_fns(region: &str) -> Vec<String> {
    let chars: Vec<char> = region.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i].is_alphabetic() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if chars.get(i) == Some(&'(') {
                out.push(chars[start..i].iter().collect());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Whether a same-file `fn name` body mentions `needle` (one-level
/// interprocedural check for AN104).
fn fn_body_contains(f: &SourceFile, name: &str, needle: &str) -> bool {
    f.functions.iter().any(|func| {
        func.name == name
            && (func.start..=func.end).any(|l| {
                f.lines
                    .get(l - 1)
                    .is_some_and(|ln| ln.code.contains(needle))
            })
    })
}

// ---------------------------------------------------------------------
// AN2xx — panic freedom in hot paths
// ---------------------------------------------------------------------

/// Files whose request/stream/solve paths must be panic-free.
fn an2xx_hot(f: &SourceFile) -> bool {
    match f.crate_name.as_str() {
        "server" => f.rel.starts_with("crates/server/src/"),
        "campaign" => {
            let file = f.rel.rsplit('/').next().unwrap_or("");
            matches!(
                file,
                "runner.rs"
                    | "jobs.rs"
                    | "journal.rs"
                    | "state.rs"
                    | "wire.rs"
                    | "cell.rs"
                    | "clock.rs"
            )
        }
        "milp" => {
            let file = f.rel.rsplit('/').next().unwrap_or("");
            matches!(file, "parallel.rs" | "sweep.rs")
        }
        _ => false,
    }
}

/// Supervisory request paths where indexing must be either absent or
/// individually justified. The byte-parser files (`http.rs`, `json.rs`,
/// `client.rs`) are out of scope: indexed scanning over length-checked
/// buffers is their idiom, as it is in the numeric kernels.
fn an203_scoped(f: &SourceFile) -> bool {
    matches!(
        f.rel.as_str(),
        "crates/server/src/server.rs"
            | "crates/server/src/api.rs"
            | "crates/server/src/spec.rs"
            | "crates/server/src/quota.rs"
            | "crates/campaign/src/runner.rs"
    )
}

fn an201_unwrap(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    if !an2xx_hot(f) {
        return;
    }
    for (line, code) in f.code_lines() {
        for needle in [".unwrap()", ".expect("] {
            for col in find_all(code, needle) {
                if lock_poison_idiom(f, line, col) {
                    continue;
                }
                fired.push(diag(
                    "AN201",
                    f,
                    line,
                    col + 1,
                    format!(
                        "`{}` in a hot path: a panic here rides up through a worker or \
                         request handler; return a typed error, or justify why this cannot \
                         fire",
                        needle.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}

/// The sanctioned `…lock().unwrap()` / `…wait_timeout(…).expect(…)`
/// shape: propagating lock poisoning is this workspace's uniform policy
/// (a poisoned lock means a worker already panicked through containment,
/// and limping on would publish torn state).
fn lock_poison_idiom(f: &SourceFile, line: usize, col: usize) -> bool {
    // Join up to 3 previous lines of a method chain, collapse whitespace.
    // A blank prefix means `.unwrap()`/`.expect(` opens its own
    // continuation line, so the receiver chain is entirely above.
    let mut text = f.lines[line - 1].code[..col].to_string();
    let mut l = line - 1;
    while l > 0 && (text.trim_start().starts_with('.') || text.trim().is_empty()) && line - l < 4 {
        text = format!("{}{}", f.lines[l - 1].code.trim_end(), text.trim_start());
        l -= 1;
    }
    let collapsed: String = text.split_whitespace().collect::<Vec<_>>().join("");
    if collapsed.ends_with(".lock()") {
        return true;
    }
    // `.wait(..)` / `.wait_timeout(..)` / `.wait_while(..)`: match the
    // callee of the final balanced call.
    if collapsed.ends_with(')') {
        let chars: Vec<char> = collapsed.chars().collect();
        let mut depth = 0i64;
        for i in (0..chars.len()).rev() {
            match chars[i] {
                ')' => depth += 1,
                '(' => {
                    depth -= 1;
                    if depth == 0 {
                        let mut s = i;
                        while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
                            s -= 1;
                        }
                        let callee: String = chars[s..i].iter().collect();
                        return matches!(callee.as_str(), "wait" | "wait_timeout" | "wait_while");
                    }
                }
                _ => {}
            }
        }
    }
    false
}

fn an202_panic_macros(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    if !an2xx_hot(f) {
        return;
    }
    for (line, code) in f.code_lines() {
        for needle in ["panic!(", "unreachable!(", "todo!(", "unimplemented!("] {
            for col in find_word(code, needle.trim_end_matches('(')) {
                if !code[col..].starts_with(needle) {
                    continue;
                }
                fired.push(diag(
                    "AN202",
                    f,
                    line,
                    col + 1,
                    format!(
                        "`{}` in a hot path: an explicit panic in worker/request code \
                         defeats the containment story; make the state unrepresentable, \
                         return an error, or justify the unreachability",
                        needle.trim_end_matches('(')
                    ),
                ));
            }
        }
    }
}

fn an203_indexing(f: &SourceFile, fired: &mut Vec<Diagnostic>) {
    if !an203_scoped(f) {
        return;
    }
    for (line, code) in f.code_lines() {
        if code.trim_start().starts_with("#[") {
            continue;
        }
        let chars: Vec<char> = code.chars().collect();
        for (i, &c) in chars.iter().enumerate() {
            if c != '[' || i == 0 {
                continue;
            }
            let p = chars[i - 1];
            if p.is_alphanumeric() || p == '_' || p == ')' || p == ']' {
                fired.push(diag(
                    "AN203",
                    f,
                    line,
                    i + 1,
                    "slice/array indexing in a supervisory request path: prefer `.get(…)` \
                     with explicit handling, or justify the in-bounds invariant"
                        .into(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Small text utilities
// ---------------------------------------------------------------------

/// Byte offsets of every occurrence of `needle` in `hay`.
pub fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        out.push(from + p);
        from += p + 1;
    }
    out
}

/// Like [`find_all`] but requiring word boundaries around the match.
pub fn find_word(hay: &str, needle: &str) -> Vec<usize> {
    find_all(hay, needle)
        .into_iter()
        .filter(|&p| {
            let before_ok = p == 0
                || !hay[..p]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after = hay[p + needle.len()..].chars().next();
            let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
            before_ok && after_ok
        })
        .collect()
}
