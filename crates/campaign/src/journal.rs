//! The write-ahead journal: every campaign state transition is one
//! checksummed, length-prefixed line, appended and synced before the
//! transition takes effect anywhere else.
//!
//! Line format (version 1):
//!
//! ```text
//! J1 <len> <crc32-hex8> <payload>\n
//! ```
//!
//! * `len` — payload length in bytes (decimal). Catches truncation
//!   deterministically (a shorter payload cannot fake its length).
//! * `crc32` — CRC-32 of the payload bytes. Catches corruption (any burst
//!   of ≤ 32 bits, i.e. every single-byte error).
//! * `payload` — a `kind field...` record; fields are whitespace-free
//!   tokens ([`crate::wire::escape`]).
//!
//! A hard kill (SIGKILL, OOM, power loss) can tear at most the *final*
//! line: [`read_journal`] drops a torn tail (missing newline, short
//! payload, or failed checksum on the last line) and reports it, while the
//! same damage anywhere *before* the tail is refused as corruption — a
//! mid-file tear cannot happen under append-only writes, so it means the
//! file was edited or the disk is lying, and resuming from it would be
//! unsound.
//!
//! ## Disk-fault semantics (the fsync-poisoning rule)
//!
//! The journal writes through an injectable I/O layer ([`JournalDisk`] /
//! [`JournalFile`], with [`FaultyDisk`] + [`IoFaultPlan`] as the
//! deterministic chaos shim), and treats *any* failed append or
//! `sync_data` as poisoning the handle: after a failure, every further
//! [`Journal::append`] is refused until [`Journal::reopen`] has re-read
//! the file, re-verified its tail, truncated any torn suffix, and opened
//! a fresh descriptor. Retrying a failed fsync on the same descriptor is
//! the classic fsyncgate bug — on most kernels the failed sync *clears*
//! the dirty pages, so a second sync "succeeds" while the data is gone.
//! The only sound recovery is to go back to the file and look.
//! ENOSPC is classified separately ([`CampaignError::DiskFull`]) so a
//! supervisor can degrade to read-only draining instead of treating the
//! failure as unexplained.

use crate::{wire, CampaignError};
use std::fmt::Debug;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Journal file name inside a campaign directory.
pub const JOURNAL_FILE: &str = "journal.wal";

// ---------------------------------------------------------------------
// The injectable I/O layer
// ---------------------------------------------------------------------

/// An open journal file handle. The contract is all-or-error: a failed
/// `write` may have put a *prefix* of the buffer on disk (a torn write —
/// already handled by replay as a dropped tail), and after any error the
/// caller must treat the handle as unusable.
pub trait JournalFile: Send + Debug {
    /// Writes the whole buffer, or errors (possibly after a prefix
    /// reached the disk).
    fn write(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file *data* to stable storage (`fdatasync` semantics).
    fn sync_data(&mut self) -> io::Result<()>;
}

/// The filesystem operations beneath a [`Journal`]. Production uses
/// [`RealDisk`]; the chaos suite wraps it in [`FaultyDisk`] to inject
/// EIO / ENOSPC / short writes / failed syncs deterministically.
pub trait JournalDisk: Send + Sync + Debug {
    /// Creates a fresh file (must refuse to overwrite).
    fn create(&self, path: &Path) -> io::Result<Box<dyn JournalFile>>;
    /// Opens an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn JournalFile>>;
    /// Reads the whole file back (the reopen+tail-verify path).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Truncates the file to `len` bytes (dropping a torn tail before
    /// new appends land after it).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealDisk;

#[derive(Debug)]
struct RealFile(File);

impl JournalFile for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl JournalDisk for RealDisk {
    fn create(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        let file = OpenOptions::new().write(true).create_new(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut raw = Vec::new();
        File::open(path)?.read_to_end(&mut raw)?;
        Ok(raw)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        OpenOptions::new().write(true).open(path)?.set_len(len)
    }
}

// ---------------------------------------------------------------------
// Deterministic disk-fault injection
// ---------------------------------------------------------------------

/// Where a disk fault can be injected beneath the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultSite {
    /// The data write of one append.
    Append,
    /// The `sync_data` of one append.
    Sync,
}

/// What an injected disk fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// Generic I/O error (`EIO`): the write/sync failed, disk state
    /// unknown.
    Eio,
    /// Out of space (`ENOSPC`): nothing further can be made durable.
    Enospc,
    /// Torn write: half the buffer reaches the disk, then `EIO`. Only
    /// meaningful at [`IoFaultSite::Append`]; at a sync site it behaves
    /// like [`IoFaultKind::Eio`].
    ShortWrite,
}

impl IoFaultKind {
    /// Stable name (drill scripts arm plans from the environment).
    pub fn name(self) -> &'static str {
        match self {
            IoFaultKind::Eio => "eio",
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::ShortWrite => "short",
        }
    }

    /// Inverse of [`IoFaultKind::name`].
    pub fn from_name(name: &str) -> Option<IoFaultKind> {
        Some(match name {
            "eio" => IoFaultKind::Eio,
            "enospc" => IoFaultKind::Enospc,
            "short" => IoFaultKind::ShortWrite,
            _ => return None,
        })
    }

    fn to_error(self, what: &str) -> io::Error {
        match self {
            // EIO = 5, ENOSPC = 28 on every Unix this workspace targets.
            IoFaultKind::Eio | IoFaultKind::ShortWrite => {
                io::Error::other(format!("injected EIO at {what}"))
            }
            IoFaultKind::Enospc => io::Error::from_raw_os_error(28),
        }
    }
}

#[derive(Debug, Default)]
struct IoFaultState {
    append_hits: AtomicUsize,
    sync_hits: AtomicUsize,
    fired: AtomicUsize,
    // lock-order: campaign.io_fault_plan (leaf: nothing is acquired under it)
    armed: Mutex<Vec<(IoFaultSite, usize, IoFaultKind)>>,
}

/// A deterministic disk-fault plan in the spirit of
/// [`metaopt_resilience::FaultPlan`]: each `inject_at` arms one fault at
/// the N-th (1-based) occurrence of a site, counters are shared across
/// clones, and an unarmed plan is entirely transparent.
#[derive(Debug, Clone, Default)]
pub struct IoFaultPlan {
    state: Arc<IoFaultState>,
}

impl IoFaultPlan {
    /// An empty (transparent) plan.
    pub fn new() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// Arms `kind` at the `occurrence`-th (1-based) hit of `site`.
    pub fn inject_at(self, site: IoFaultSite, occurrence: usize, kind: IoFaultKind) -> Self {
        self.state
            .armed
            .lock()
            .expect("io fault plan lock poisoned")
            .push((site, occurrence.max(1), kind));
        self
    }

    /// Records a hit at `site` and returns the armed fault, if this is
    /// its occurrence.
    fn fire(&self, site: IoFaultSite) -> Option<IoFaultKind> {
        let counter = match site {
            IoFaultSite::Append => &self.state.append_hits,
            IoFaultSite::Sync => &self.state.sync_hits,
        };
        let hit = counter.fetch_add(1, Ordering::SeqCst) + 1;
        let armed = self
            .state
            .armed
            .lock()
            .expect("io fault plan lock poisoned");
        let kind = armed
            .iter()
            .find(|(s, occ, _)| *s == site && *occ == hit)
            .map(|(_, _, k)| *k);
        if kind.is_some() {
            self.state.fired.fetch_add(1, Ordering::SeqCst);
        }
        kind
    }

    /// Hits recorded at `site` so far (across all clones).
    pub fn hits(&self, site: IoFaultSite) -> usize {
        match site {
            IoFaultSite::Append => self.state.append_hits.load(Ordering::SeqCst),
            IoFaultSite::Sync => self.state.sync_hits.load(Ordering::SeqCst),
        }
    }

    /// Faults actually delivered so far (across all clones).
    pub fn fired(&self) -> usize {
        self.state.fired.load(Ordering::SeqCst)
    }

    /// Parses a drill-script plan spec: comma-separated
    /// `<site>:<occurrence>:<kind>` triples, e.g. `append:3:enospc` or
    /// `sync:1:eio,append:5:short`. Sites are `append`/`sync`; kinds are
    /// [`IoFaultKind::from_name`] names.
    pub fn parse(spec: &str) -> Result<IoFaultPlan, String> {
        let mut plan = IoFaultPlan::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let mut tok = part.trim().splitn(3, ':');
            let site = match tok.next().unwrap_or("") {
                "append" => IoFaultSite::Append,
                "sync" => IoFaultSite::Sync,
                other => return Err(format!("unknown io-fault site `{other}`")),
            };
            let occ_tok = tok.next().ok_or_else(|| format!("`{part}` missing occurrence"))?;
            let occurrence: usize = occ_tok
                .parse()
                .map_err(|_| format!("bad occurrence `{occ_tok}` in `{part}`"))?;
            let kind_tok = tok.next().ok_or_else(|| format!("`{part}` missing kind"))?;
            let kind = IoFaultKind::from_name(kind_tok)
                .ok_or_else(|| format!("unknown io-fault kind `{kind_tok}`"))?;
            plan = plan.inject_at(site, occurrence, kind);
        }
        Ok(plan)
    }
}

/// A [`JournalDisk`] that delivers the faults an [`IoFaultPlan`] arms and
/// is otherwise the real filesystem.
#[derive(Debug, Clone)]
pub struct FaultyDisk {
    plan: IoFaultPlan,
}

impl FaultyDisk {
    /// Wraps the real disk with `plan`.
    pub fn new(plan: IoFaultPlan) -> FaultyDisk {
        FaultyDisk { plan }
    }
}

#[derive(Debug)]
struct FaultyFile {
    inner: Box<dyn JournalFile>,
    plan: IoFaultPlan,
}

impl JournalFile for FaultyFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.plan.fire(IoFaultSite::Append) {
            None => self.inner.write(buf),
            Some(IoFaultKind::ShortWrite) => {
                // Half the line reaches the disk; replay sees a torn tail.
                self.inner.write(&buf[..buf.len() / 2])?;
                Err(IoFaultKind::ShortWrite.to_error("append (after torn prefix)"))
            }
            Some(kind) => Err(kind.to_error("append")),
        }
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.plan.fire(IoFaultSite::Sync) {
            None => self.inner.sync_data(),
            Some(kind) => Err(kind.to_error("sync_data")),
        }
    }
}

impl JournalDisk for FaultyDisk {
    fn create(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        let inner = RealDisk.create(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            plan: self.plan.clone(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn JournalFile>> {
        let inner = RealDisk.open_append(path)?;
        Ok(Box::new(FaultyFile {
            inner,
            plan: self.plan.clone(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        RealDisk.read(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        RealDisk.truncate(path, len)
    }
}

// ---------------------------------------------------------------------
// The journal writer
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Poison {
    disk_full: bool,
    why: String,
}

/// Append-only journal writer. Every [`Journal::append`] writes and
/// fsyncs before returning: when the call returns `Ok`, the record
/// survives the process. When it returns `Err`, the handle is *poisoned*
/// — no further appends until [`Journal::reopen`] has re-verified the
/// file (the fsync-poisoning rule in the module docs).
#[derive(Debug)]
pub struct Journal {
    /// `None` iff poisoned.
    file: Option<Box<dyn JournalFile>>,
    disk: Arc<dyn JournalDisk>,
    path: PathBuf,
    poisoned: Option<Poison>,
    /// Durability counters (no-op by default); `append` is the single
    /// choke point every record passes through, so counting here covers
    /// campaign runs and the job server's book alike.
    metrics: crate::CampaignMetrics,
}

impl Journal {
    /// Creates a fresh journal (refuses to overwrite an existing one — an
    /// existing journal means "resume", never "restart").
    pub fn create(dir: &Path) -> Result<Journal, CampaignError> {
        Journal::create_with(dir, Arc::new(RealDisk))
    }

    /// [`Journal::create`] over an injectable disk layer.
    pub fn create_with(dir: &Path, disk: Arc<dyn JournalDisk>) -> Result<Journal, CampaignError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CampaignError::Io(format!("create {}: {e}", dir.display())))?;
        let path = dir.join(JOURNAL_FILE);
        let file = disk
            .create(&path)
            .map_err(|e| classify_io(&path, "create", &e))?;
        Ok(Journal {
            file: Some(file),
            disk,
            path,
            poisoned: None,
            metrics: crate::CampaignMetrics::disabled(),
        })
    }

    /// Opens an existing journal for appending (resume path).
    pub fn open_append(dir: &Path) -> Result<Journal, CampaignError> {
        Journal::open_append_with(dir, Arc::new(RealDisk))
    }

    /// [`Journal::open_append`] over an injectable disk layer.
    pub fn open_append_with(
        dir: &Path,
        disk: Arc<dyn JournalDisk>,
    ) -> Result<Journal, CampaignError> {
        let path = dir.join(JOURNAL_FILE);
        let file = disk
            .open_append(&path)
            .map_err(|e| classify_io(&path, "open", &e))?;
        Ok(Journal {
            file: Some(file),
            disk,
            path,
            poisoned: None,
            metrics: crate::CampaignMetrics::disabled(),
        })
    }

    /// Installs durability counters; subsequent appends/fsyncs count
    /// against them. Observation only — write behaviour is unchanged.
    pub fn set_metrics(&mut self, metrics: crate::CampaignMetrics) {
        self.metrics = metrics;
    }

    /// Whether the handle is poisoned (a previous append/sync failed and
    /// [`Journal::reopen`] has not yet re-verified the file).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Appends one record payload (without the `J1 len crc` envelope —
    /// this method adds it), then flushes and syncs. On failure the
    /// handle poisons itself: the write may or may not be on disk, and
    /// only [`Journal::reopen`]'s tail re-verification can say which.
    pub fn append(&mut self, payload: &str) -> Result<(), CampaignError> {
        debug_assert!(!payload.contains('\n'), "payloads are single-line");
        if let Some(p) = &self.poisoned {
            let why = format!(
                "journal {} is poisoned (reopen + tail-verify required): {}",
                self.path.display(),
                p.why
            );
            return Err(if p.disk_full {
                CampaignError::DiskFull(why)
            } else {
                CampaignError::Io(why)
            });
        }
        let Some(file) = self.file.as_mut() else {
            return Err(CampaignError::Io(format!(
                "journal {} has no open handle",
                self.path.display()
            )));
        };
        let line = encode_line(payload);
        match file
            .write(line.as_bytes())
            .and_then(|()| file.sync_data())
        {
            Ok(()) => {
                self.metrics.journal_appends.inc();
                self.metrics.journal_fsyncs.inc();
                Ok(())
            }
            Err(e) => {
                let disk_full = is_disk_full(&e);
                let why = format!("append {}: {e}", self.path.display());
                // Poison: drop the handle outright. Re-syncing a
                // descriptor whose fsync failed can silently lose the
                // dirty pages (fsyncgate); the descriptor is dead to us.
                self.file = None;
                self.poisoned = Some(Poison {
                    disk_full,
                    why: why.clone(),
                });
                self.metrics.journal_poisonings.inc();
                Err(if disk_full {
                    CampaignError::DiskFull(why)
                } else {
                    CampaignError::Io(why)
                })
            }
        }
    }

    /// Recovers a poisoned handle: re-reads the file, re-verifies every
    /// record, truncates a torn tail (so future appends never land after
    /// garbage), and opens a fresh descriptor. Returns the verified
    /// contents so the caller can reconcile which of its in-flight
    /// records actually made it to disk before resuming.
    pub fn reopen(&mut self) -> Result<JournalContents, CampaignError> {
        let raw = self
            .disk
            .read(&self.path)
            .map_err(|e| classify_io(&self.path, "reread", &e))?;
        let contents = parse_journal_bytes(&raw)?;
        if contents.torn_tail {
            self.disk
                .truncate(&self.path, contents.valid_len as u64)
                .map_err(|e| classify_io(&self.path, "truncate torn tail of", &e))?;
        }
        let file = self
            .disk
            .open_append(&self.path)
            .map_err(|e| classify_io(&self.path, "reopen", &e))?;
        self.file = Some(file);
        self.poisoned = None;
        self.metrics.journal_reopens.inc();
        Ok(contents)
    }
}

/// ENOSPC detection across the injected shim and the real kernel.
fn is_disk_full(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28)
}

fn classify_io(path: &Path, what: &str, e: &io::Error) -> CampaignError {
    let why = format!("{what} {}: {e}", path.display());
    if is_disk_full(e) {
        CampaignError::DiskFull(why)
    } else {
        CampaignError::Io(why)
    }
}

/// Wraps a payload in the `J1 <len> <crc> <payload>\n` envelope.
pub fn encode_line(payload: &str) -> String {
    format!(
        "J1 {} {:08x} {payload}\n",
        payload.len(),
        wire::crc32(payload.as_bytes())
    )
}

/// Verifies one framed line (without its trailing newline) and returns
/// the payload — the inverse of [`encode_line`], shared with the sandbox
/// IPC protocol which speaks the same envelope over pipes.
pub fn decode_line(line: &str) -> Result<String, String> {
    verify_line(line.as_bytes(), true)
}

/// Outcome of replaying a journal file from disk.
#[derive(Debug)]
pub struct JournalContents {
    /// The verified record payloads, in append order.
    pub records: Vec<String>,
    /// Whether a torn final line was detected and dropped (evidence of a
    /// hard kill mid-append; harmless — the write-ahead discipline means
    /// the lost record's transition never took effect).
    pub torn_tail: bool,
    /// Byte length of the verified prefix (the whole file unless
    /// `torn_tail`; the truncation point for reopen-after-poison).
    pub valid_len: usize,
}

/// Reads and verifies a journal. Corruption anywhere except the final
/// line is an error; a torn final line is dropped and flagged.
pub fn read_journal(dir: &Path) -> Result<JournalContents, CampaignError> {
    let path = dir.join(JOURNAL_FILE);
    let raw = RealDisk
        .read(&path)
        .map_err(|e| CampaignError::Io(format!("read {}: {e}", path.display())))?;
    parse_journal_bytes(&raw)
}

/// Parses raw journal bytes (separated from I/O for the corruption
/// property tests).
pub fn parse_journal_bytes(raw: &[u8]) -> Result<JournalContents, CampaignError> {
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut valid_len = 0usize;
    let mut offset = 0usize;
    while offset < raw.len() {
        let (line, next, complete) = match raw[offset..].iter().position(|&b| b == b'\n') {
            Some(rel) => (&raw[offset..offset + rel], offset + rel + 1, true),
            None => (&raw[offset..], raw.len(), false),
        };
        let at_tail = next >= raw.len();
        match verify_line(line, complete) {
            Ok(payload) => {
                records.push(payload);
                valid_len = next;
            }
            Err(why) => {
                if at_tail {
                    // A hard kill tears at most the final append.
                    torn_tail = true;
                } else {
                    return Err(CampaignError::Corrupt(format!(
                        "journal record {} (byte offset {offset}): {why}",
                        records.len()
                    )));
                }
            }
        }
        offset = next;
    }
    Ok(JournalContents {
        records,
        torn_tail,
        valid_len,
    })
}

/// Verifies one journal line's envelope, returning the payload.
fn verify_line(line: &[u8], newline_terminated: bool) -> Result<String, String> {
    if !newline_terminated {
        return Err("missing newline terminator".into());
    }
    let text = std::str::from_utf8(line).map_err(|_| "not valid UTF-8".to_string())?;
    let rest = text
        .strip_prefix("J1 ")
        .ok_or_else(|| "missing `J1` envelope".to_string())?;
    let (len_s, rest) = rest
        .split_once(' ')
        .ok_or_else(|| "missing length field".to_string())?;
    let (crc_s, payload) = rest
        .split_once(' ')
        .ok_or_else(|| "missing checksum field".to_string())?;
    let len: usize = len_s.parse().map_err(|_| format!("bad length `{len_s}`"))?;
    if payload.len() != len {
        return Err(format!("length mismatch: header {len}, got {}", payload.len()));
    }
    let crc = u32::from_str_radix(crc_s, 16).map_err(|_| format!("bad checksum `{crc_s}`"))?;
    let actual = wire::crc32(payload.as_bytes());
    if crc != actual {
        return Err(format!("checksum mismatch: header {crc:08x}, got {actual:08x}"));
    }
    Ok(payload.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_then_parse_round_trips() {
        let mut bytes = Vec::new();
        let payloads = ["campaign v1 demo", "cell 0 spec", "done 0 3 120"];
        for p in payloads {
            bytes.extend_from_slice(encode_line(p).as_bytes());
        }
        let out = parse_journal_bytes(&bytes).unwrap();
        assert!(!out.torn_tail);
        assert_eq!(out.valid_len, bytes.len());
        assert_eq!(out.records, payloads);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(encode_line("cell 0 spec").as_bytes());
        let good_len = bytes.len();
        let full = encode_line("ckpt 0 blob");
        // Simulate a SIGKILL mid-append: half the final line, no newline.
        bytes.extend_from_slice(&full.as_bytes()[..full.len() / 2]);
        let out = parse_journal_bytes(&bytes).unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.valid_len, good_len);
        assert_eq!(out.records, vec!["cell 0 spec".to_string()]);
    }

    #[test]
    fn mid_file_corruption_is_fatal() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(encode_line("cell 0 spec").as_bytes());
        bytes.extend_from_slice(encode_line("ckpt 0 blob").as_bytes());
        // Flip a payload byte in the *first* record.
        let flip = 12;
        bytes[flip] ^= 0x01;
        let err = parse_journal_bytes(&bytes).unwrap_err();
        assert!(matches!(err, CampaignError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn truncated_tail_with_newline_is_torn() {
        // A record whose payload was cut short but whose newline made it
        // to disk: caught by the length field.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(encode_line("cell 0 spec").as_bytes());
        let full = encode_line("ckpt 0 some-longer-blob");
        let cut = &full.as_bytes()[..full.len() - 6];
        bytes.extend_from_slice(cut);
        bytes.push(b'\n');
        let out = parse_journal_bytes(&bytes).unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.records.len(), 1);
    }

    #[test]
    fn frame_decode_line_round_trips() {
        let line = encode_line("spec 7 2 tokens");
        let payload = decode_line(line.trim_end_matches('\n')).unwrap();
        assert_eq!(payload, "spec 7 2 tokens");
        assert!(decode_line("J1 3 deadbeef xyz").is_err());
    }

    #[test]
    fn failed_sync_poisons_until_reopen_verifies_tail() {
        let dir = std::env::temp_dir().join(format!("mo-jrnl-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = IoFaultPlan::new().inject_at(IoFaultSite::Sync, 3, IoFaultKind::Eio);
        let disk = Arc::new(FaultyDisk::new(plan.clone()));
        let mut journal = Journal::create_with(&dir, disk).unwrap();
        journal.append("hdr v1 t").unwrap();
        journal.append("rec one").unwrap();
        // Third append: the write lands, the fsync fails — the fsyncgate
        // shape. The handle must poison, and must stay poisoned.
        let err = journal.append("rec two").unwrap_err();
        assert!(matches!(err, CampaignError::Io(_)), "{err:?}");
        assert!(journal.is_poisoned());
        let again = journal.append("rec three").unwrap_err();
        assert!(
            again.to_string().contains("poisoned"),
            "append after poison must refuse, got: {again}"
        );
        assert_eq!(plan.fired(), 1);
        // Reopen re-reads and re-verifies: the record whose fsync failed
        // *did* reach the file here (the shim failed only the sync), so
        // the caller sees it in the verified contents and must not
        // re-append it.
        let contents = journal.reopen().unwrap();
        assert_eq!(
            contents.records,
            vec!["hdr v1 t", "rec one", "rec two"],
            "reopen must report exactly what is durable"
        );
        assert!(!journal.is_poisoned());
        journal.append("rec three").unwrap();
        let after = read_journal(&dir).unwrap();
        assert_eq!(after.records.len(), 4);
        assert!(!after.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_poisons_and_reopen_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("mo-jrnl-short-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = IoFaultPlan::new().inject_at(IoFaultSite::Append, 2, IoFaultKind::ShortWrite);
        let disk = Arc::new(FaultyDisk::new(plan));
        let mut journal = Journal::create_with(&dir, disk).unwrap();
        journal.append("hdr v1 t").unwrap();
        let err = journal.append("rec that tears").unwrap_err();
        assert!(matches!(err, CampaignError::Io(_)), "{err:?}");
        assert!(journal.is_poisoned());
        // The torn prefix is on disk; reopen must drop it and truncate so
        // the next append cannot land after garbage.
        let contents = journal.reopen().unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.records, vec!["hdr v1 t"]);
        journal.append("rec two").unwrap();
        let after = read_journal(&dir).unwrap();
        assert!(!after.torn_tail, "truncation must have removed the tear");
        assert_eq!(after.records, vec!["hdr v1 t", "rec two"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_classifies_as_disk_full() {
        let dir = std::env::temp_dir().join(format!("mo-jrnl-enospc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = IoFaultPlan::new().inject_at(IoFaultSite::Append, 1, IoFaultKind::Enospc);
        let disk = Arc::new(FaultyDisk::new(plan));
        let mut journal = Journal::create_with(&dir, disk).unwrap();
        let err = journal.append("hdr v1 t").unwrap_err();
        assert!(matches!(err, CampaignError::DiskFull(_)), "{err:?}");
        // The poisoned re-refusal keeps the classification.
        let again = journal.append("x").unwrap_err();
        assert!(matches!(again, CampaignError::DiskFull(_)), "{again:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_parses_drill_specs() {
        let plan = IoFaultPlan::parse("append:3:enospc,sync:1:eio").unwrap();
        assert!(plan.fire(IoFaultSite::Sync).is_some());
        assert!(plan.fire(IoFaultSite::Append).is_none());
        assert!(plan.fire(IoFaultSite::Append).is_none());
        assert!(plan.fire(IoFaultSite::Append) == Some(IoFaultKind::Enospc));
        assert!(IoFaultPlan::parse("append:x:eio").is_err());
        assert!(IoFaultPlan::parse("floppy:1:eio").is_err());
        assert!(IoFaultPlan::parse("append:1:gremlins").is_err());
        assert!(IoFaultPlan::parse("").unwrap().fire(IoFaultSite::Sync).is_none());
    }
}
