//! Property tests for the job-server journal vocabulary: any *valid*
//! interleaving of enqueue / run / checkpoint / cancel / failure records
//! across many concurrent jobs replays to exactly the state a simple
//! reference model predicts, and the CRC framing's torn-tail detection
//! holds for the server record types just as it does for campaign cells.

use metaopt_campaign::jobs::{JobBook, JobRecord, JobStatus};
use metaopt_campaign::{encode_line, parse_journal_bytes, CellHeuristic, CellSpec, TopologySpec};
use metaopt_core::SweepState;
use metaopt_resilience::QuarantineReason;
use proptest::prelude::*;

fn spec(label: &str) -> CellSpec {
    CellSpec {
        label: label.into(),
        topology: TopologySpec::Fig1 { cap: 100.0 },
        paths_per_pair: 2,
        heuristic: CellHeuristic::Dp { threshold: 50.0 },
        lo: 0.0,
        hi: 100.0,
        resolution: 4.0,
        probe_cap_nodes: 4_000,
        slice_nodes: 16,
        timeout_secs: None,
        fault_seed: None,
        quantized: None,
    }
}

fn ckpt_state(nodes: usize) -> SweepState {
    let mut st = spec("ckpt").fresh_state().unwrap();
    st.nodes = nodes;
    st
}

/// What the reference model expects of one job after replay.
#[derive(Debug, Clone, PartialEq)]
struct Expect {
    status: &'static str,
    attempt: usize,
    failures: usize,
    has_resume: bool,
    resume_nodes: Option<usize>,
}

/// A reference job-server: applies abstract ops in order, emitting only
/// transitions a real server could journal, and tracks the state replay
/// must reproduce.
struct Model {
    records: Vec<String>,
    jobs: Vec<Expect>, // index = id - 1
    /// Latest `Shutdown` reason journaled, if any (latest wins on replay).
    shutdown: Option<String>,
}

impl Model {
    fn new(name: &str) -> Model {
        Model {
            records: vec![JobBook::header(name)],
            jobs: Vec::new(),
            shutdown: None,
        }
    }

    fn live(&self) -> Vec<usize> {
        (0..self.jobs.len())
            .filter(|&i| {
                matches!(self.jobs[i].status, "pending" | "cancelling")
            })
            .collect()
    }

    /// Applies one abstract op, `pick` choosing among eligible jobs.
    fn apply(&mut self, op: u8, pick: usize) {
        let live = self.live();
        match op % 8 {
            // Admit a new job.
            0 => {
                let id = self.jobs.len() as u64 + 1;
                self.records.push(
                    JobRecord::Submit {
                        id,
                        client: format!("tenant-{}", pick % 3),
                        priority: (pick % 10) as u8,
                        threads: pick % 4,
                        spec: Box::new(spec(&format!("job-{id}"))),
                    }
                    .encode(),
                );
                self.jobs.push(Expect {
                    status: "pending",
                    attempt: 0,
                    failures: 0,
                    has_resume: false,
                    resume_nodes: None,
                });
            }
            // Start (or restart) an attempt.
            1 => {
                if let Some(&i) = live.get(pick % live.len().max(1)) {
                    self.records.push(
                        JobRecord::Run {
                            id: i as u64 + 1,
                            attempt: self.jobs[i].attempt + 1,
                            fence: self.records.len() as u64,
                        }
                        .encode(),
                    );
                }
            }
            // Durable checkpoint mid-attempt.
            2 => {
                if let Some(&i) = live.get(pick % live.len().max(1)) {
                    let nodes = pick * 16;
                    self.records.push(
                        JobRecord::Ckpt {
                            id: i as u64 + 1,
                            state: Box::new(ckpt_state(nodes)),
                        }
                        .encode(),
                    );
                    self.jobs[i].has_resume = true;
                    self.jobs[i].resume_nodes = Some(nodes);
                }
            }
            // Cancellation request (the drain-to-checkpoint phase).
            3 => {
                if let Some(&i) = live.get(pick % live.len().max(1)) {
                    self.records.push(JobRecord::Cancel { id: i as u64 + 1 }.encode());
                    self.jobs[i].status = "cancelling";
                }
            }
            // Attempt failed (retryable until quarantined).
            4 => {
                if let Some(&i) = live.get(pick % live.len().max(1)) {
                    let attempt = self.jobs[i].attempt + 1;
                    self.records.push(
                        JobRecord::Fail {
                            id: i as u64 + 1,
                            attempt,
                            kind: "timeout".into(),
                            detail: "cell deadline".into(),
                        }
                        .encode(),
                    );
                    self.jobs[i].attempt = attempt;
                    self.jobs[i].failures += 1;
                }
            }
            // Terminal: completed or quarantined.
            5 => {
                if let Some(&i) = live.get(pick % live.len().max(1)) {
                    if pick.is_multiple_of(2) {
                        self.records.push(
                            JobRecord::Done {
                                id: i as u64 + 1,
                                outcome: fixed_outcome(),
                            }
                            .encode(),
                        );
                        self.jobs[i].status = "done";
                    } else {
                        self.records.push(
                            JobRecord::Quarantine {
                                id: i as u64 + 1,
                                reason: QuarantineReason::RepeatedTimeout,
                                attempts: self.jobs[i].attempt.max(1),
                            }
                            .encode(),
                        );
                        self.jobs[i].status = "quarantined";
                    }
                }
            }
            // Terminal: cancellation completed.
            6 => {
                if let Some(&i) = live.get(pick % live.len().max(1)) {
                    self.records.push(JobRecord::Cancelled { id: i as u64 + 1 }.encode());
                    self.jobs[i].status = "cancelled";
                }
            }
            // Graceful shutdown marker. The journal stays appendable (the
            // next boot keeps writing to the same file), so later records
            // are valid and the latest reason wins.
            _ => {
                let reason = format!("drain-{}", pick % 3);
                self.records.push(
                    JobRecord::Shutdown {
                        reason: reason.clone(),
                    }
                    .encode(),
                );
                self.shutdown = Some(reason);
            }
        }
    }
}

/// A fixed certified outcome (no solve needed to test the codec).
fn fixed_outcome() -> metaopt_campaign::CellOutcome {
    metaopt_campaign::CellOutcome {
        threshold: Some(48.0),
        verified_gap: Some(33.333_333_333_333_336),
        demands: vec![100.0, 0.0, 66.666_666_666_666_67],
        probes: 5,
        nodes: 240,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any valid interleaving of server records across many jobs replays
    /// to exactly the reference model's state.
    #[test]
    fn valid_interleavings_replay_to_the_model_state(
        ops in proptest::collection::vec((0u8..14, 0usize..64), 1..80),
    ) {
        let mut model = Model::new("prop-server");
        for (op, pick) in ops {
            model.apply(op, pick);
        }
        let book = JobBook::replay(&model.records, false).expect("valid interleaving must replay");
        prop_assert_eq!(book.name.as_str(), "prop-server");
        prop_assert_eq!(book.clean_shutdown.as_deref(), model.shutdown.as_deref());
        prop_assert_eq!(book.jobs.len(), model.jobs.len());
        prop_assert_eq!(book.next_id(), model.jobs.len() as u64 + 1);
        for (i, want) in model.jobs.iter().enumerate() {
            let got = &book.jobs[&(i as u64 + 1)];
            prop_assert_eq!(got.status.name(), want.status, "job {}", i + 1);
            prop_assert_eq!(got.failures.len(), want.failures);
            match &got.status {
                JobStatus::Pending { attempt, resume, .. } => {
                    prop_assert_eq!(*attempt, want.attempt);
                    prop_assert_eq!(resume.is_some(), want.has_resume);
                    if let (Some(st), Some(nodes)) = (resume.as_ref(), want.resume_nodes) {
                        prop_assert_eq!(st.nodes, nodes);
                    }
                }
                _ => prop_assert!(
                    matches!(want.status, "done" | "quarantined" | "cancelled")
                ),
            }
        }
    }

    /// Round-tripping the full record stream through the CRC-framed
    /// journal encoding and truncating at an arbitrary byte yields a
    /// verified prefix that still replays — torn-tail tolerance holds for
    /// the server vocabulary, and a cut inside a record is always flagged.
    #[test]
    fn truncated_server_journals_replay_to_a_clean_prefix(
        ops in proptest::collection::vec((0u8..14, 0usize..64), 1..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut model = Model::new("prop-torn");
        for (op, pick) in ops {
            model.apply(op, pick);
        }
        let bytes: Vec<u8> = model
            .records
            .iter()
            .flat_map(|p| encode_line(p).into_bytes())
            .collect();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let out = parse_journal_bytes(&bytes[..cut.min(bytes.len())]).unwrap();
        prop_assert!(out.records.len() <= model.records.len());
        for (got, want) in out.records.iter().zip(&model.records) {
            prop_assert_eq!(got, want);
        }
        // A surviving prefix of a valid stream is itself valid (prefix
        // closure is what makes crash recovery sound at *any* cut).
        if !out.records.is_empty() {
            let book = JobBook::replay(&out.records, out.torn_tail)
                .expect("verified prefix must replay");
            prop_assert_eq!(book.torn_tail, out.torn_tail);
            prop_assert!(book.jobs.len() <= model.jobs.len());
        }
    }

    /// Arbitrary record streams — valid or not — never panic: replay
    /// either reconstructs a book or reports corruption.
    #[test]
    fn replay_never_panics_on_arbitrary_records(
        lines in proptest::collection::vec(
            proptest::collection::vec(' '..'\u{7f}', 0..60),
            0..20,
        ),
        with_header in 0u8..2,
    ) {
        let mut records = Vec::new();
        if with_header == 1 {
            records.push(JobBook::header("fuzz"));
        }
        records.extend(lines.into_iter().map(|cs| cs.into_iter().collect::<String>()));
        let _ = JobBook::replay(&records, false);
    }
}
