#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # metaopt-analyze
//!
//! The workspace correctness analyzer: deny-by-default static gates over
//! the codebase itself, in the same spirit as `metaopt-modelcheck`'s
//! MC0xx gates over the model IR. Two halves:
//!
//! * **Source lints** (this module tree): a hand-rolled token/AST-lite
//!   scanner over every first-party crate emitting stable `ANxxx`
//!   diagnostics — determinism (AN0xx), concurrency (AN1xx),
//!   panic-freedom (AN2xx), journal/protocol vocabulary coverage
//!   (AN3xx), and suppression hygiene (AN4xx). Run via
//!   `cargo run -p xtask -- analyze`.
//! * **Protocol model checker** ([`protocol`]): a bounded exhaustive
//!   interleaving explorer for an extracted model of the work-stealing
//!   frontier/inflight-slot/stop protocol in `metaopt-milp`, asserting
//!   the no-lost-wakeup and bound-visibility invariants that were
//!   violated by the two (since fixed) PR 5 races.
//!
//! Both halves are catalogued, with rationale and the PR 5 post-mortems
//! as worked examples, in `DESIGN.md` §14.
//!
//! ## Suppressions
//!
//! A diagnostic is suppressed by a justified annotation on (or directly
//! above) the offending line:
//!
//! ```text
//! // an:allow(AN001): the poll deadline for a live client must track
//! // real time.
//! let deadline = Instant::now() + timeout;
//! ```
//!
//! The justification after the `:` is mandatory (AN402) and stale
//! suppressions that no longer mask anything are themselves errors
//! (AN401), so the suppression set cannot rot.

pub mod lints;
pub mod protocol;
pub mod scan;
pub mod vocab;

use std::fmt;
use std::path::{Path, PathBuf};

/// How serious a diagnostic is. Everything the gate denies is an
/// [`Severity::Error`]; the analyzer currently emits nothing weaker, but
/// the taxonomy mirrors `metaopt-modelcheck` so future advisory lints
/// slot in without reshaping the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but not gating.
    Warning,
    /// Gating: `xtask analyze` fails while any of these exist.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where a diagnostic points: a file plus a 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Workspace-relative path (`crates/milp/src/parallel.rs`).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (byte offset within the line).
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.col)
    }
}

/// One analyzer finding with a stable code.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code (`AN001` … `AN402`); never renumbered.
    pub code: &'static str,
    /// Severity (the gate denies errors).
    pub severity: Severity,
    /// Where.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

/// A collection of diagnostics from one analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Moves every diagnostic of `other` into `self`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// All diagnostics, in file/line order after [`Report::sort`].
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The error-severity subset.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Whether anything gating was found.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether the report is completely empty.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any diagnostic carries `code`.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Sorts diagnostics by (file, line, col, code) for stable output.
    pub fn sort(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (&a.span.file, a.span.line, a.span.col, a.code)
                .cmp(&(&b.span.file, b.span.line, b.span.col, b.code))
        });
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        let errors = self.errors().count();
        format!(
            "{} diagnostic(s), {} error(s)",
            self.diagnostics.len(),
            errors
        )
    }
}

/// Collects every first-party `.rs` file under `root` (the workspace
/// root): `src/` plus each `crates/*/src/`, skipping `vendor/` and build
/// output entirely. Paths come back sorted and workspace-relative.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            stack.push(entry.path().join("src"));
        }
    }
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Collects every integration-test `.rs` file (`crates/*/tests/`). These
/// are not linted (tests may unwrap and panic freely) but the AN3xx
/// vocabulary checks need them: the jobs-journal reference model lives in
/// one.
pub fn workspace_test_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let tests = entry.path().join("tests");
            let Ok(tests_entries) = std::fs::read_dir(&tests) else {
                continue;
            };
            for t in tests_entries.flatten() {
                let path = t.path();
                if path.extension().is_some_and(|e| e == "rs") {
                    files.push(path);
                }
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs every source lint (AN0xx–AN4xx) over the workspace at `root`.
/// This is what `cargo run -p xtask -- analyze` gates on; the protocol
/// checker ([`protocol::gate`]) is the other half of that command.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let parse_all = |files: Vec<PathBuf>| -> std::io::Result<Vec<scan::SourceFile>> {
        let mut out = Vec::new();
        for path in files {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(scan::SourceFile::parse(&rel, &text));
        }
        Ok(out)
    };
    let sources = parse_all(workspace_sources(root)?)?;
    let test_sources = parse_all(workspace_test_sources(root)?)?;
    let mut report = lints::run(&sources);
    report.merge(vocab::run(&sources, &test_sources));
    report.sort();
    Ok(report)
}
