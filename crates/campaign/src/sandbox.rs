//! Process isolation for cell execution: the blast-radius containment
//! layer.
//!
//! `catch_unwind` contains panics, but it cannot contain the failure
//! modes a gap-finding campaign is *built* to provoke: a KKT encoding
//! whose MILP explodes to tens of gigabytes, an abort in a dependency, a
//! runaway loop that never reaches a tick boundary. The only containment
//! boundary the kernel actually enforces is a process, so the supervisor
//! ([`run_cell_sandboxed`]) executes each cell attempt in a child
//! process — `gapserver --worker`, a self-exec of the same binary — and
//! polices it from outside:
//!
//! * **Heartbeat liveness.** The child emits a `beat` frame on a fixed
//!   interval; silence past the configured window means the child is
//!   wedged (livelocked, stopped, or swapping to death) and it is killed.
//! * **Wall-clock limit.** Measured by the supervisor from spawn, so no
//!   amount of child misbehaviour can evade it.
//! * **RSS limit.** The supervisor polls `/proc/<pid>/statm` (Linux) and
//!   kills on breach — the OOM that used to take the whole server down
//!   now takes down one attempt.
//!
//! Kills are deliberate (`SIGKILL`, no grace: the child is by definition
//! not trustworthy at that point) and map to the retryable
//! `killed_oom` / `killed_deadline` / `killed_heartbeat` failure kinds
//! ([`metaopt_resilience::WorkerKillReason`]).
//!
//! ## IPC protocol
//!
//! Frames are journal envelopes ([`crate::journal::encode_line`]) over
//! the child's stdin/stdout — one `J1 <len> <crc> <payload>\n` line per
//! frame, so torn and corrupt frames are detected exactly like torn
//! journal tails. Payload vocabulary:
//!
//! ```text
//! parent → child
//!   spec <threads> <deadline_ms|-> <beat_ms> <cellspec…>   the work
//!   resume <sweep-state…>                                  optional checkpoint
//!   go                                                     start driving
//!   stop                                                   drain to a tick boundary
//! child → parent
//!   ready                                                  spec accepted
//!   beat                                                   liveness heartbeat
//!   ckpt <sweep-state…>                                    durable tick boundary
//!   done <outcome…>                                        certified completion
//!   fail <kind> <detail>                                   attempt failed
//!   stopped                                                drained after `stop`
//! ```
//!
//! The parent journals `ckpt` frames *before* acknowledging anything
//! (the same write-ahead discipline as in-process execution), so a child
//! killed mid-tick loses at most one tick, exactly like `kill -9` of the
//! whole server. Any child exit without a terminal frame is reported as
//! the retryable `worker_exit` failure kind.
//!
//! Lease fencing — the guarantee that a zombie child which *outlives*
//! its supervisor's patience can never write over a retried attempt's
//! record — lives one layer up, in the server's claim table: results
//! only enter the journal through the supervisor, and the supervisor
//! stamps each claim with a monotone fencing token checked at record
//! time. See `DESIGN.md` §16.

use crate::cell::{decode_sweep_state, encode_sweep_state, CellOutcome, CellSpec};
use crate::journal::{decode_line, encode_line};
use crate::runner::{drive_cell, CellDriveEnd, SolverObs};
use crate::{wire, CampaignError, Clock, SystemClock};
use metaopt_core::SweepState;
use metaopt_resilience::WorkerKillReason;
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Resource ceilings the supervisor enforces on one worker child.
#[derive(Debug, Clone)]
pub struct SandboxLimits {
    /// Wall-clock ceiling for the whole attempt, measured from spawn by
    /// the *supervisor* (`None` = unlimited). Breach ⇒ `killed_deadline`.
    pub wall: Option<Duration>,
    /// Resident-set ceiling in bytes (`None` = unlimited; only enforced
    /// where `/proc` exists). Breach ⇒ `killed_oom`.
    pub rss_bytes: Option<u64>,
    /// Maximum silence (no frame of any kind) before the child is
    /// presumed wedged. Breach ⇒ `killed_heartbeat`.
    pub heartbeat: Duration,
}

impl Default for SandboxLimits {
    fn default() -> Self {
        SandboxLimits {
            wall: None,
            rss_bytes: None,
            heartbeat: Duration::from_secs(10),
        }
    }
}

/// How to launch worker children.
#[derive(Debug, Clone)]
pub struct SandboxConfig {
    /// The worker executable — in production the server's own binary
    /// (self-exec), so parent and child can never skew versions.
    pub program: PathBuf,
    /// Arguments selecting worker mode (e.g. `["--worker"]`).
    pub args: Vec<String>,
    /// Enforced ceilings.
    pub limits: SandboxLimits,
}

/// How one sandboxed attempt ended, from the supervisor's viewpoint.
#[derive(Debug)]
pub enum SandboxEnd {
    /// The child certified completion.
    Finished(CellOutcome),
    /// The child reported a failure (same taxonomy as
    /// [`CellDriveEnd::Failed`]), or died without a terminal frame
    /// (`kind = "worker_exit"`).
    Failed {
        /// Failure-taxonomy kind.
        kind: String,
        /// Free-form detail for the fault history.
        detail: String,
    },
    /// The supervisor killed the child for a limit breach. Retryable —
    /// this is the containment working, not the work failing.
    Killed(WorkerKillReason),
    /// `stop()` was honoured; the last journaled checkpoint is the exact
    /// resume point.
    Stopped,
}

/// Frames the reader thread forwards to the supervisor loop.
enum WorkerFrame {
    Payload(String),
    /// Stdout closed (child exited or crashed); payload is a best-effort
    /// description of any decode error that preceded it.
    Eof(Option<String>),
}

/// Runs one cell attempt in a supervised child process. The signature
/// mirrors [`drive_cell`] — same checkpoint write-ahead contract, same
/// stop semantics — with the failure surface widened by the kill
/// taxonomy. `Err` is reserved for `on_checkpoint` (journal) failures;
/// everything that goes wrong *in or to the child* is a [`SandboxEnd`].
#[allow(clippy::too_many_arguments)]
pub fn run_cell_sandboxed(
    config: &SandboxConfig,
    spec: &CellSpec,
    threads_override: usize,
    factor_override: Option<metaopt_core::FactorBackend>,
    resume: Option<&SweepState>,
    cell_deadline: Option<Instant>,
    clock: &dyn Clock,
    tracer: &metaopt_obs::Tracer,
    on_checkpoint: &mut dyn FnMut(&SweepState) -> Result<(), CampaignError>,
    stop: &mut dyn FnMut() -> bool,
) -> Result<SandboxEnd, CampaignError> {
    let _span = tracer.span(
        "sandbox.attempt",
        vec![("label", spec.label.clone())],
    );
    let mut cmd = Command::new(&config.program);
    cmd.args(&config.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    // The factor override travels by environment, not by wire frame: the
    // child resolves `METAOPT_FACTOR` when it builds its solver configs,
    // so the protocol stays backward compatible.
    if let Some(f) = factor_override {
        cmd.env("METAOPT_FACTOR", f.name());
    }
    // an:allow(AN104): this spawns a *process*, not a thread — panic
    // containment is structural (a child crash is an Eof frame, handled
    // below), and AN106 pins all process spawns to this module.
    let child = cmd.spawn();
    let mut child = match child {
        Ok(c) => c,
        Err(e) => {
            // Spawn failure is environmental (fork limits, missing
            // binary); surface it as a retryable attempt failure so the
            // retry/quarantine policy governs it like any other fault.
            return Ok(SandboxEnd::Failed {
                kind: "worker_exit".into(),
                detail: format!("spawn {}: {e}", config.program.display()),
            });
        }
    };
    let pid = child.id();
    tracer.event("sandbox.spawn", vec![("pid", pid.to_string())]);

    let beat_ms = (config.limits.heartbeat.as_millis() as u64 / 4).clamp(25, 1_000);
    let deadline_tok = match cell_deadline {
        Some(d) => d
            .saturating_duration_since(clock.now())
            .as_millis()
            .to_string(),
        None => "-".into(),
    };
    // Ship the work. Write failures here mean the child died instantly;
    // the reader's Eof path below reports it.
    if let Some(stdin) = child.stdin.as_mut() {
        let mut frames = vec![format!(
            "spec {threads_override} {deadline_tok} {beat_ms} {}",
            spec.encode()
        )];
        if let Some(state) = resume {
            frames.push(format!("resume {}", encode_sweep_state(state)));
        }
        frames.push("go".into());
        for frame in frames {
            let _ = stdin.write_all(encode_line(&frame).as_bytes());
        }
        let _ = stdin.flush();
    }

    let (tx, rx) = mpsc::channel();
    let stdout = child.stdout.take();
    let reader = std::thread::spawn(move || {
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let Some(stdout) = stdout else {
                let _ = tx.send(WorkerFrame::Eof(Some("no stdout pipe".into())));
                return;
            };
            let mut decode_err = None;
            for line in BufReader::new(stdout).lines() {
                let Ok(line) = line else { break };
                match decode_line(&line) {
                    Ok(payload) => {
                        if tx.send(WorkerFrame::Payload(payload)).is_err() {
                            return; // supervisor gone; stop reading
                        }
                    }
                    Err(why) => {
                        // A corrupt frame means the child is unsound;
                        // stop reading and let the supervisor kill it.
                        decode_err = Some(format!("corrupt worker frame: {why}"));
                        break;
                    }
                }
            }
            let _ = tx.send(WorkerFrame::Eof(decode_err));
        }));
    });

    let started = clock.now();
    let mut last_frame = started;
    let mut stop_sent: Option<Instant> = None;
    let end = loop {
        match rx.recv_timeout(Duration::from_millis(50)) {
            Ok(WorkerFrame::Payload(payload)) => {
                last_frame = clock.now();
                let (kind, body) = payload.split_once(' ').unwrap_or((payload.as_str(), ""));
                match kind {
                    "ready" | "beat" => {}
                    "ckpt" => {
                        let state = match decode_sweep_state(body) {
                            Ok(s) => s,
                            Err(why) => {
                                kill_child(&mut child, tracer, "corrupt_ckpt");
                                break SandboxEnd::Failed {
                                    kind: "worker_exit".into(),
                                    detail: format!("corrupt checkpoint frame: {why}"),
                                };
                            }
                        };
                        if let Err(e) = on_checkpoint(&state) {
                            // Journal trouble is the *supervisor's*
                            // failure: put the child down and propagate.
                            kill_child(&mut child, tracer, "journal_error");
                            let _ = reader.join();
                            return Err(e);
                        }
                    }
                    "done" => match CellOutcome::decode(body) {
                        Ok(outcome) => break SandboxEnd::Finished(outcome),
                        Err(why) => {
                            kill_child(&mut child, tracer, "corrupt_done");
                            break SandboxEnd::Failed {
                                kind: "worker_exit".into(),
                                detail: format!("corrupt done frame: {why}"),
                            };
                        }
                    },
                    "fail" => {
                        let (fkind, detail) = decode_fail_body(body);
                        break SandboxEnd::Failed {
                            kind: fkind,
                            detail,
                        };
                    }
                    "stopped" => break SandboxEnd::Stopped,
                    other => {
                        kill_child(&mut child, tracer, "unknown_frame");
                        break SandboxEnd::Failed {
                            kind: "worker_exit".into(),
                            detail: format!("unknown worker frame `{other}`"),
                        };
                    }
                }
            }
            Ok(WorkerFrame::Eof(decode_err)) => {
                // Child gone without a terminal frame: reap and report.
                let status = child.wait().map(|s| s.to_string());
                let detail = match (decode_err, status) {
                    (Some(why), _) => why,
                    (None, Ok(st)) => format!("worker exited without a result ({st})"),
                    (None, Err(e)) => format!("worker exited without a result (wait: {e})"),
                };
                tracer.event("sandbox.worker_exit", vec![("pid", pid.to_string())]);
                let _ = reader.join();
                return Ok(SandboxEnd::Failed {
                    kind: "worker_exit".into(),
                    detail,
                });
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Reader thread died; treat like Eof.
                let _ = child.kill();
                let _ = child.wait();
                let _ = reader.join();
                return Ok(SandboxEnd::Failed {
                    kind: "worker_exit".into(),
                    detail: "worker reader thread lost".into(),
                });
            }
        }

        let now = clock.now();
        if let Some(wall) = config.limits.wall {
            if now.saturating_duration_since(started) > wall {
                kill_child(&mut child, tracer, "deadline");
                break SandboxEnd::Killed(WorkerKillReason::Deadline);
            }
        }
        if now.saturating_duration_since(last_frame) > config.limits.heartbeat {
            kill_child(&mut child, tracer, "heartbeat");
            break SandboxEnd::Killed(WorkerKillReason::Heartbeat);
        }
        if let Some(limit) = config.limits.rss_bytes {
            if let Some(rss) = probe_rss_bytes(pid) {
                if rss > limit {
                    kill_child(&mut child, tracer, "oom");
                    break SandboxEnd::Killed(WorkerKillReason::Oom);
                }
            }
        }
        match stop_sent {
            None => {
                if stop() {
                    if let Some(stdin) = child.stdin.as_mut() {
                        let _ = stdin.write_all(encode_line("stop").as_bytes());
                        let _ = stdin.flush();
                    }
                    stop_sent = Some(now);
                }
            }
            Some(at) => {
                // The child gets one heartbeat window to drain to a tick
                // boundary; past that it is killed, which is equivalent
                // for the caller (last durable ckpt is the resume point).
                if now.saturating_duration_since(at) > config.limits.heartbeat {
                    kill_child(&mut child, tracer, "stop_grace");
                    break SandboxEnd::Stopped;
                }
            }
        }
    };
    // Reap whatever is left; terminal frames mean the child is exiting
    // on its own, kills already reaped inside kill_child.
    drop(child.stdin.take());
    let _ = child.wait();
    let _ = reader.join();
    Ok(end)
}

/// SIGKILL + reap. No grace: by the time the supervisor kills, the child
/// is either breaching a resource ceiling or not talking.
fn kill_child(child: &mut Child, tracer: &metaopt_obs::Tracer, why: &'static str) {
    tracer.event(
        "sandbox.kill",
        vec![("pid", child.id().to_string()), ("why", why.to_string())],
    );
    let _ = child.kill();
    let _ = child.wait();
}

/// Resident set of `pid` in bytes, where the OS exposes it.
#[cfg(target_os = "linux")]
fn probe_rss_bytes(pid: u32) -> Option<u64> {
    let statm = std::fs::read_to_string(format!("/proc/{pid}/statm")).ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

#[cfg(not(target_os = "linux"))]
fn probe_rss_bytes(_pid: u32) -> Option<u64> {
    None
}

fn decode_fail_body(body: &str) -> (String, String) {
    let (kind_tok, detail_tok) = body.split_once(' ').unwrap_or((body, ""));
    let kind = wire::unescape(kind_tok).unwrap_or_else(|_| "worker_exit".into());
    let detail = wire::unescape(detail_tok).unwrap_or_default();
    (kind, detail)
}

// ---------------------------------------------------------------------
// The child side
// ---------------------------------------------------------------------

/// Entry point for `gapserver --worker`: speaks the sandbox protocol on
/// stdin/stdout, drives exactly one cell, exits. Returns the process
/// exit code. Never panics out — the drive loop is `catch_unwind`-
/// contained by [`drive_cell`] itself, and protocol errors exit nonzero
/// (the supervisor reports `worker_exit`).
pub fn worker_main() -> i32 {
    let out = Arc::new(Mutex::new(std::io::stdout()));

    let mut spec: Option<CellSpec> = None;
    let mut threads_override = 0usize;
    let mut deadline_ms: Option<u64> = None;
    let mut beat_ms = 250u64;
    let mut resume: Option<SweepState> = None;

    // Setup phase: read frames until `go`.
    // `Stdin` (not its lock) so the watcher thread can take the reader.
    let mut reader = BufReader::new(std::io::stdin());
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return 2, // parent gone before go
            Ok(_) => {}
        }
        let payload = match decode_line(line.trim_end_matches('\n')) {
            Ok(p) => p,
            Err(_) => return 2,
        };
        let (kind, body) = payload.split_once(' ').unwrap_or((payload.as_str(), ""));
        match kind {
            "spec" => {
                let mut tok = body.splitn(4, ' ');
                let Ok(threads) = wire::parse_usize(tok.next().unwrap_or(""), "threads") else {
                    return 2;
                };
                let dl_tok = tok.next().unwrap_or("-");
                let bt_tok = tok.next().unwrap_or("");
                let Some(spec_body) = tok.next() else { return 2 };
                threads_override = threads;
                deadline_ms = if dl_tok == "-" {
                    None
                } else {
                    match wire::parse_u64(dl_tok, "deadline") {
                        Ok(ms) => Some(ms),
                        Err(_) => return 2,
                    }
                };
                if let Ok(ms) = wire::parse_u64(bt_tok, "beat") {
                    beat_ms = ms.clamp(25, 5_000);
                }
                match CellSpec::decode(spec_body) {
                    Ok(s) => spec = Some(s),
                    Err(_) => return 2,
                }
                if write_frame(&out, "ready").is_err() {
                    return 2;
                }
            }
            "resume" => match decode_sweep_state(body) {
                Ok(state) => resume = Some(state),
                Err(_) => return 2,
            },
            "go" => break,
            "stop" => return 0, // stopped before starting: nothing to drain
            _ => return 2,
        }
    }
    let Some(spec) = spec else { return 2 };

    let clock = SystemClock;
    let cell_deadline = deadline_ms.map(|ms| clock.now() + Duration::from_millis(ms));

    // Heartbeat thread: proof-of-life on a fixed cadence, independent of
    // tick boundaries (a long MILP solve must not read as a wedge). The
    // pause is a condvar wait, not a sleep, so a finished cell can wake
    // it immediately — otherwise every worker exit (and therefore every
    // supervisor slot) would pay out the rest of a beat window.
    let beating = Arc::new((Mutex::new(true), Condvar::new()));
    let beat_out = Arc::clone(&out);
    let beat_flag = Arc::clone(&beating);
    let beat_thread = std::thread::spawn(move || {
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let (alive, wake) = &*beat_flag;
            loop {
                // lock-order: the beat flag is never held across
                // write_frame (which takes the stdout lock).
                if !*alive.lock().expect("beat flag lock poisoned") {
                    return;
                }
                if write_frame(&beat_out, "beat").is_err() {
                    return; // parent gone; the drive loop will find out
                }
                let guard = alive.lock().expect("beat flag lock poisoned");
                let (guard, _) = wake
                    .wait_timeout_while(guard, Duration::from_millis(beat_ms), |a| *a)
                    .expect("beat flag lock poisoned");
                if !*guard {
                    return;
                }
            }
        }));
    });

    // Stdin watcher: a `stop` frame (or stdin EOF — supervisor died)
    // requests drain-to-checkpoint.
    let stop_flag = Arc::new(AtomicBool::new(false));
    let watcher_flag = Arc::clone(&stop_flag);
    let watcher = std::thread::spawn(move || {
        let _ = catch_unwind(AssertUnwindSafe(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break, // EOF: orphaned worker drains
                    Ok(_) => {
                        if decode_line(line.trim_end_matches('\n')).as_deref() == Ok("stop") {
                            break;
                        }
                    }
                }
            }
            watcher_flag.store(true, Ordering::SeqCst);
        }));
    });

    let obs = SolverObs {
        metrics: metaopt_milp::MilpMetrics::default(),
        tracer: metaopt_obs::Tracer::disabled(),
    };
    let ckpt_out = Arc::clone(&out);
    let mut on_checkpoint = |state: &SweepState| -> Result<(), CampaignError> {
        write_frame(&ckpt_out, &format!("ckpt {}", encode_sweep_state(state)))
            .map_err(|e| CampaignError::Io(format!("worker stdout: {e}")))
    };
    let stop_read = Arc::clone(&stop_flag);
    let mut stop = move || stop_read.load(Ordering::SeqCst);

    // No factor frame in the protocol: the supervisor exports any factor
    // override as `METAOPT_FACTOR` in this process's environment, which
    // the solver configs resolve on their own.
    let end = drive_cell(
        &spec,
        threads_override,
        None,
        resume,
        cell_deadline,
        &clock,
        &obs,
        &mut on_checkpoint,
        &mut stop,
    );

    {
        let (alive, wake) = &*beating;
        *alive.lock().expect("beat flag lock poisoned") = false;
        wake.notify_all();
    }
    let code = match end {
        Ok(CellDriveEnd::Finished(outcome)) => {
            frame_or_die(&out, &format!("done {}", outcome.encode()))
        }
        Ok(CellDriveEnd::Failed { kind, detail }) => frame_or_die(
            &out,
            &format!("fail {} {}", wire::escape(&kind), wire::escape(&detail)),
        ),
        Ok(CellDriveEnd::Stopped) => frame_or_die(&out, "stopped"),
        // on_checkpoint failed = stdout to the supervisor is gone; there
        // is no one left to tell.
        Err(_) => 2,
    };
    let _ = beat_thread.join();
    // The watcher blocks on stdin; exiting the process releases it, so
    // join only if it already finished.
    if watcher.is_finished() {
        let _ = watcher.join();
    }
    code
}

/// Writes one framed payload, atomically with respect to the heartbeat
/// thread, and flushes (frames are the parent's liveness signal — a
/// buffered beat is a missed beat).
fn write_frame(out: &Mutex<std::io::Stdout>, payload: &str) -> std::io::Result<()> {
    // lock-order: campaign.sandbox_stdout (leaf: nothing acquired under it)
    let mut out = out.lock().expect("worker stdout lock poisoned");
    out.write_all(encode_line(payload).as_bytes())?;
    out.flush()
}

fn frame_or_die(out: &Mutex<std::io::Stdout>, payload: &str) -> i32 {
    if write_frame(out, payload).is_ok() {
        0
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_default_to_liveness_only() {
        let limits = SandboxLimits::default();
        assert!(limits.wall.is_none());
        assert!(limits.rss_bytes.is_none());
        assert!(limits.heartbeat > Duration::ZERO);
    }

    #[test]
    fn fail_body_decodes_with_escapes() {
        let body = format!("{} {}", wire::escape("solver"), wire::escape("lp blew up"));
        let (kind, detail) = decode_fail_body(&body);
        assert_eq!(kind, "solver");
        assert_eq!(detail, "lp blew up");
        // Degenerate bodies never panic.
        let (kind, detail) = decode_fail_body("");
        assert_eq!(kind, "");
        assert_eq!(detail, "");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_probe_reads_own_process() {
        let rss = probe_rss_bytes(std::process::id()).expect("self statm");
        assert!(rss > 0);
    }
}
