#!/usr/bin/env bash
# Compare a fresh BENCH_bnb.json against the committed baseline and fail
# on >25% regression of the headline deterministic-engine speedup.
#
# The headline metric is `speedup_vs_serial` of the deterministic engine
# on the longest-running model (line4-dp — the sub-millisecond fig1 cells
# are too noisy to gate on), taken at the largest benchmarked thread
# count that does not exceed EITHER file's hardware_threads: speedups
# measured with more threads than cores are scheduling artifacts, and
# the baseline may have been produced on a smaller machine than CI.
# Remaining models/threads are reported informationally.
#
# usage: scripts/bench_compare.sh <baseline.json> <current.json>
set -euo pipefail

BASELINE="${1:-BENCH_bnb.json}"
CURRENT="${2:-target/figures/BENCH_bnb.json}"
HEADLINE_MODEL="line4-dp"
MAX_REGRESSION_PCT=25

for f in "$BASELINE" "$CURRENT"; do
    [[ -s "$f" ]] || { echo "bench_compare: missing or empty $f" >&2; exit 1; }
done

hw() { # hw <file>
    sed -n 's/.*"hardware_threads": \([0-9][0-9]*\).*/\1/p' "$1" | head -1
}

speedup() { # speedup <file> <model> <engine> <threads> <factor>
    # Cells are keyed by (model, engine, threads, factor). Baselines
    # produced before the factor dimension existed lack the "factor"
    # field; fall back to the unlabeled match so old files still gate.
    local v
    v="$(sed -n 's/.*"model": "'"$2"'", "engine": "'"$3"'", "threads": '"$4"', "factor": "'"$5"'", .*"speedup_vs_serial": \([0-9.]*\).*/\1/p' "$1" | head -1)"
    if [[ -z "$v" ]]; then
        v="$(sed -n 's/.*"model": "'"$2"'", "engine": "'"$3"'", "threads": '"$4"', .*"speedup_vs_serial": \([0-9.]*\).*/\1/p' "$1" | head -1)"
    fi
    printf '%s' "$v"
}

hw_base="$(hw "$BASELINE")"
hw_cur="$(hw "$CURRENT")"
[[ -n "$hw_base" && -n "$hw_cur" ]] || { echo "bench_compare: hardware_threads missing" >&2; exit 1; }
cap=$(( hw_base < hw_cur ? hw_base : hw_cur ))

T=1
for t in 2 4 8; do
    (( t <= cap )) && T="$t"
done

echo "bench_compare: baseline=$BASELINE (hw $hw_base) current=$CURRENT (hw $hw_cur), gating deterministic@${T}t on $HEADLINE_MODEL"

echo "  model      threads  factor  baseline  current"
for model in fig1-dp fig1-pop line4-dp; do
    for t in 1 2 4 8; do
        for factor in dense sparse; do
            b="$(speedup "$BASELINE" "$model" deterministic "$t" "$factor")"
            c="$(speedup "$CURRENT" "$model" deterministic "$t" "$factor")"
            [[ -n "$b" && -n "$c" ]] || continue
            if (( t > cap )); then
                # Oversubscribed cells are scheduling noise, not engine
                # performance; comparing them invites phantom regressions.
                printf '  %-10s %7s  %-6s  skipped: %st exceeds hardware_threads (baseline %s, current %s)\n' \
                    "$model" "$t" "$factor" "$t" "$hw_base" "$hw_cur"
            else
                printf '  %-10s %7s  %-6s  %8s  %7s\n' "$model" "$t" "$factor" "$b" "$c"
            fi
        done
    done
done

# The production default is the sparse backend, so the regression gate
# runs on the sparse headline cell (pre-factor baselines fall back to
# their single unlabeled — dense — cell).
base_headline="$(speedup "$BASELINE" "$HEADLINE_MODEL" deterministic "$T" sparse)"
cur_headline="$(speedup "$CURRENT" "$HEADLINE_MODEL" deterministic "$T" sparse)"
[[ -n "$base_headline" && -n "$cur_headline" ]] \
    || { echo "bench_compare: headline cell ($HEADLINE_MODEL deterministic@$T sparse) missing" >&2; exit 1; }

# current >= baseline * (1 - MAX_REGRESSION_PCT/100), in awk for the floats.
if awk "BEGIN { exit !($cur_headline >= $base_headline * (1 - $MAX_REGRESSION_PCT / 100.0)) }"; then
    echo "bench_compare OK: headline det-engine speedup $cur_headline vs baseline $base_headline (limit -${MAX_REGRESSION_PCT}%)"
else
    echo "bench_compare FAILED: headline det-engine speedup regressed >${MAX_REGRESSION_PCT}%: $cur_headline vs baseline $base_headline" >&2
    exit 1
fi

# Backend gate: the sparse factorization core must not lose to the dense
# one on the headline deterministic speedup of the current run. Skipped
# when the current file predates the factor dimension.
cur_dense="$(speedup "$CURRENT" "$HEADLINE_MODEL" deterministic "$T" dense)"
if [[ -n "$cur_dense" && "$cur_dense" != "$cur_headline" ]]; then
    if awk "BEGIN { exit !($cur_headline >= $cur_dense) }"; then
        echo "bench_compare OK: sparse headline speedup $cur_headline >= dense $cur_dense"
    else
        echo "bench_compare FAILED: sparse headline speedup $cur_headline below dense $cur_dense" >&2
        exit 1
    fi
fi
