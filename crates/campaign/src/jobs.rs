//! The job server's durable job store, built on the same write-ahead
//! journal machinery as campaigns ([`crate::journal`]): every job-lifecycle
//! transition is one CRC-checked record, appended and synced *before* the
//! transition is acknowledged anywhere else — the admission `202` is only
//! sent after the `job` record is durable, which is what makes "every
//! acknowledged job survives `kill -9`" a provable contract rather than a
//! best effort.
//!
//! Record vocabulary (the payload inside each `J1` envelope):
//!
//! ```text
//! jobs v1 <server-name>                    header, always first
//! job <id> <client> <prio> <threads> <spec…>  admission (durable before the ack)
//! cancel <id>                              client requested cancellation
//! run <id> <attempt> <fence>               a pool worker picked the job up
//! ckpt <id> <sweep-state…>                 durable tick boundary
//! done <id> <outcome…>                     certified completion (terminal)
//! fail <id> <attempt> <kind> <detail>      attempt failed; retry may follow
//! quarantine <id> <reason> <attempts>      gave up on the job (terminal)
//! cancelled <id>                           cancellation drained (terminal)
//! shutdown <reason>                        graceful drain finished
//! ```
//!
//! Unlike a campaign (a fixed grid declared up front), jobs arrive
//! dynamically, so there is no cell count in the header; ids are assigned
//! monotonically by the server and replay enforces that they are strictly
//! increasing. Replay is otherwise as strict as the campaign's: unknown
//! kinds, undeclared ids, and transitions on terminal jobs are all
//! [`CampaignError::Corrupt`].

use crate::cell::{decode_sweep_state, encode_sweep_state, CellOutcome, CellSpec};
use crate::journal::read_journal;
use crate::state::FailureRecord;
use crate::{wire, CampaignError};
use metaopt_core::SweepState;
use metaopt_resilience::QuarantineReason;
use std::collections::BTreeMap;
use std::path::Path;

/// Job-journal format/version header tag.
pub const JOBS_MAGIC: &str = "jobs v1";

/// One typed record of the job journal. [`JobRecord::encode`] produces the
/// payload the journal envelope wraps; [`JobRecord::decode`] is its strict
/// inverse (it never panics on untrusted post-crash bytes).
#[derive(Debug, Clone)]
pub enum JobRecord {
    /// Admission: the job exists once this record is durable.
    Submit {
        /// Server-assigned monotone job id.
        id: u64,
        /// Client identity (quota accounting).
        client: String,
        /// Priority class, `0` = most urgent.
        priority: u8,
        /// Per-job `FinderConfig::threads` cap (`0` = spec default).
        threads: usize,
        /// The work itself.
        spec: Box<CellSpec>,
    },
    /// A client asked for cancellation (drain to checkpoint, then stop).
    Cancel {
        /// Target job.
        id: u64,
    },
    /// A pool worker picked the job up.
    Run {
        /// Target job.
        id: u64,
        /// 1-based attempt number.
        attempt: usize,
        /// Fencing token of the lease this attempt runs under (strictly
        /// monotone per claim; `0` in journals written before fencing
        /// existed). Replay ignores it, but journaling the token with
        /// the claim makes every stale-write rejection auditable.
        fence: u64,
    },
    /// Durable tick boundary of the job's sweep.
    Ckpt {
        /// Target job.
        id: u64,
        /// The resumable state at the boundary.
        state: Box<SweepState>,
    },
    /// Certified completion. Terminal.
    Done {
        /// Target job.
        id: u64,
        /// The certified outcome.
        outcome: CellOutcome,
    },
    /// A failed attempt (retry may follow).
    Fail {
        /// Target job.
        id: u64,
        /// Which attempt failed (1-based).
        attempt: usize,
        /// Failure-taxonomy kind (`fatal`/`panic`/`solver`/`timeout`).
        kind: String,
        /// Free-form detail.
        detail: String,
    },
    /// The supervisor gave up on the job. Terminal.
    Quarantine {
        /// Target job.
        id: u64,
        /// Why.
        reason: QuarantineReason,
        /// Attempts burnt.
        attempts: usize,
    },
    /// Cancellation completed. Terminal.
    Cancelled {
        /// Target job.
        id: u64,
    },
    /// Graceful drain finished.
    Shutdown {
        /// Why the server drained.
        reason: String,
    },
}

impl JobRecord {
    /// Encodes the record as a journal payload.
    pub fn encode(&self) -> String {
        match self {
            JobRecord::Submit {
                id,
                client,
                priority,
                threads,
                spec,
            } => format!(
                "job {id} {} {priority} {threads} {}",
                wire::escape(client),
                spec.encode()
            ),
            JobRecord::Cancel { id } => format!("cancel {id}"),
            JobRecord::Run { id, attempt, fence } => format!("run {id} {attempt} {fence}"),
            JobRecord::Ckpt { id, state } => {
                format!("ckpt {id} {}", encode_sweep_state(state))
            }
            JobRecord::Done { id, outcome } => format!("done {id} {}", outcome.encode()),
            JobRecord::Fail {
                id,
                attempt,
                kind,
                detail,
            } => format!(
                "fail {id} {attempt} {} {}",
                wire::escape(kind),
                wire::escape(detail)
            ),
            JobRecord::Quarantine {
                id,
                reason,
                attempts,
            } => format!("quarantine {id} {} {attempts}", reason.kind()),
            JobRecord::Cancelled { id } => format!("cancelled {id}"),
            JobRecord::Shutdown { reason } => format!("shutdown {}", wire::escape(reason)),
        }
    }

    /// Decodes a journal payload. Errors, never panics, on malformed
    /// input — journal bytes are untrusted after a crash.
    pub fn decode(payload: &str) -> Result<JobRecord, String> {
        let (kind, rest) = payload.split_once(' ').unwrap_or((payload, ""));
        if kind == "shutdown" {
            return Ok(JobRecord::Shutdown {
                reason: wire::unescape(rest)?,
            });
        }
        let (id_tok, body) = rest.split_once(' ').unwrap_or((rest, ""));
        let id = wire::parse_u64(id_tok, "job id")?;
        Ok(match kind {
            "job" => {
                let (client_tok, r) = body
                    .split_once(' ')
                    .ok_or_else(|| "job record missing client".to_string())?;
                let (prio_tok, r) = r
                    .split_once(' ')
                    .ok_or_else(|| "job record missing priority".to_string())?;
                let (threads_tok, spec_body) = r
                    .split_once(' ')
                    .ok_or_else(|| "job record missing threads".to_string())?;
                let priority = prio_tok
                    .parse::<u8>()
                    .map_err(|_| format!("bad priority `{prio_tok}`"))?;
                JobRecord::Submit {
                    id,
                    client: wire::unescape(client_tok)?,
                    priority,
                    threads: wire::parse_usize(threads_tok, "threads")?,
                    spec: Box::new(CellSpec::decode(spec_body)?),
                }
            }
            "cancel" => {
                if !body.is_empty() {
                    return Err("trailing tokens after cancel".into());
                }
                JobRecord::Cancel { id }
            }
            "run" => {
                // Pre-fencing journals wrote `run <id> <attempt>`; the
                // fence token is a back-compatible third field.
                let (attempt_tok, fence_tok) = body.split_once(' ').unwrap_or((body, "0"));
                JobRecord::Run {
                    id,
                    attempt: wire::parse_usize(attempt_tok, "attempt")?,
                    fence: wire::parse_u64(fence_tok, "fence")?,
                }
            }
            "ckpt" => JobRecord::Ckpt {
                id,
                state: Box::new(decode_sweep_state(body)?),
            },
            "done" => JobRecord::Done {
                id,
                outcome: CellOutcome::decode(body)?,
            },
            "fail" => {
                let mut tok = body.splitn(3, ' ');
                let attempt = wire::parse_usize(tok.next().unwrap_or(""), "attempt")?;
                let fkind = tok
                    .next()
                    .ok_or_else(|| "missing fault kind".to_string())?;
                JobRecord::Fail {
                    id,
                    attempt,
                    kind: wire::unescape(fkind)?,
                    detail: wire::unescape(tok.next().unwrap_or("~"))?,
                }
            }
            "quarantine" => {
                let (reason_tok, attempts_tok) = body
                    .split_once(' ')
                    .ok_or_else(|| "quarantine missing attempts".to_string())?;
                JobRecord::Quarantine {
                    id,
                    reason: QuarantineReason::from_kind(reason_tok)
                        .ok_or_else(|| format!("unknown quarantine reason `{reason_tok}`"))?,
                    attempts: wire::parse_usize(attempts_tok, "attempts")?,
                }
            }
            "cancelled" => {
                if !body.is_empty() {
                    return Err("trailing tokens after cancelled".into());
                }
                JobRecord::Cancelled { id }
            }
            other => return Err(format!("unknown job record kind `{other}`")),
        })
    }
}

/// Replayed lifecycle state of one job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Admitted but not finished: run (or re-run) it, continuing from
    /// `resume` if set. `cancel_requested` jobs drain to their next
    /// checkpoint and then become [`JobStatus::Cancelled`].
    Pending {
        /// Attempts already burnt (failed runs).
        attempt: usize,
        /// Last durable tick boundary, if any.
        resume: Option<SweepState>,
        /// Whether a `cancel` record has been journaled.
        cancel_requested: bool,
    },
    /// Completed with a certified outcome. Terminal.
    Done(CellOutcome),
    /// Given up after repeated failures. Terminal.
    Quarantined {
        /// Why the supervisor gave up.
        reason: QuarantineReason,
        /// Attempts burnt before giving up.
        attempts: usize,
    },
    /// Cancellation drained. Terminal.
    Cancelled,
}

impl JobStatus {
    /// Whether the job needs no further work.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Pending { .. })
    }

    /// Stable lowercase name for status reporting.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Pending {
                cancel_requested: true,
                ..
            } => "cancelling",
            JobStatus::Pending { .. } => "pending",
            JobStatus::Done(_) => "done",
            JobStatus::Quarantined { .. } => "quarantined",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// One job reconstructed from the journal: the admission metadata plus the
/// replayed lifecycle state and fault history.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// Server-assigned id.
    pub id: u64,
    /// Client identity.
    pub client: String,
    /// Priority class, `0` = most urgent.
    pub priority: u8,
    /// Per-job thread cap (`0` = spec default).
    pub threads: usize,
    /// The work itself.
    pub spec: CellSpec,
    /// Replayed lifecycle state.
    pub status: JobStatus,
    /// Failure history (survives retries and quarantine).
    pub failures: Vec<FailureRecord>,
}

/// The whole job store reconstructed from its journal — the *only* source
/// of truth at server boot.
#[derive(Debug)]
pub struct JobBook {
    /// Server name (from the header record).
    pub name: String,
    /// Jobs by id (ordered: ids are admission-monotone).
    pub jobs: BTreeMap<u64, JobEntry>,
    /// Whether the journal ended in a torn record (hard-kill evidence).
    pub torn_tail: bool,
    /// `Some(reason)` when the last run drained gracefully.
    pub clean_shutdown: Option<String>,
    /// Highest fencing token seen on any `run` record. The next boot
    /// starts minting tokens above this, keeping fences monotone across
    /// restarts even though leases themselves die with the process.
    pub max_fence: u64,
}

impl JobBook {
    /// Reads and replays a job-server directory's journal.
    pub fn from_dir(dir: &Path) -> Result<JobBook, CampaignError> {
        let contents = read_journal(dir)?;
        JobBook::replay(&contents.records, contents.torn_tail)
    }

    /// Folds verified journal records into the job store. Strict: a
    /// journal that replays is a journal whose every transition made
    /// sense in order.
    pub fn replay(records: &[String], torn_tail: bool) -> Result<JobBook, CampaignError> {
        let corrupt = |msg: String| CampaignError::Corrupt(msg);
        let mut it = records.iter();
        let header = it
            .next()
            .ok_or_else(|| corrupt("empty journal (no jobs header)".into()))?;
        let name_tok = header
            .strip_prefix(JOBS_MAGIC)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| corrupt(format!("bad jobs header `{header}`")))?;
        let name = wire::unescape(name_tok).map_err(&corrupt)?;

        let mut jobs: BTreeMap<u64, JobEntry> = BTreeMap::new();
        let mut clean_shutdown = None;
        let mut max_id: Option<u64> = None;
        let mut max_fence = 0u64;

        for (rec_no, raw) in it.enumerate() {
            let ctx = |why: String| corrupt(format!("record {}: {why}", rec_no + 1));
            let rec = JobRecord::decode(raw).map_err(&ctx)?;
            // Admission and shutdown first; everything else targets an
            // existing, non-terminal job.
            match rec {
                JobRecord::Shutdown { reason } => {
                    clean_shutdown = Some(reason);
                    continue;
                }
                JobRecord::Submit {
                    id,
                    client,
                    priority,
                    threads,
                    spec,
                } => {
                    if max_id.is_some_and(|m| id <= m) {
                        return Err(ctx(format!(
                            "job id {id} not strictly increasing (max {})",
                            max_id.unwrap_or(0)
                        )));
                    }
                    max_id = Some(id);
                    jobs.insert(
                        id,
                        JobEntry {
                            id,
                            client,
                            priority,
                            threads,
                            spec: *spec,
                            status: JobStatus::Pending {
                                attempt: 0,
                                resume: None,
                                cancel_requested: false,
                            },
                            failures: Vec::new(),
                        },
                    );
                    continue;
                }
                _ => {}
            }
            let id = match &rec {
                JobRecord::Cancel { id }
                | JobRecord::Run { id, .. }
                | JobRecord::Ckpt { id, .. }
                | JobRecord::Done { id, .. }
                | JobRecord::Fail { id, .. }
                | JobRecord::Quarantine { id, .. }
                | JobRecord::Cancelled { id } => *id,
                // an:allow(AN202): both variants were consumed by the
                // enclosing match directly above; this arm is structurally
                // unreachable, and a panic here would mean that invariant
                // broke — exactly what should abort replay.
                JobRecord::Submit { .. } | JobRecord::Shutdown { .. } => unreachable!(),
            };
            let entry = jobs
                .get_mut(&id)
                .ok_or_else(|| ctx(format!("job {id} used before admission")))?;
            if entry.status.is_terminal() {
                return Err(ctx(format!("transition on terminal job {id}")));
            }
            match rec {
                JobRecord::Cancel { .. } => {
                    if let JobStatus::Pending {
                        cancel_requested, ..
                    } = &mut entry.status
                    {
                        *cancel_requested = true;
                    }
                }
                // Informational for job state; the fence high-water mark
                // seeds the next boot's token mint.
                JobRecord::Run { fence, .. } => max_fence = max_fence.max(fence),
                JobRecord::Ckpt { state, .. } => {
                    if let JobStatus::Pending { resume, .. } = &mut entry.status {
                        *resume = Some(*state);
                    }
                }
                JobRecord::Done { outcome, .. } => entry.status = JobStatus::Done(outcome),
                JobRecord::Fail {
                    attempt,
                    kind,
                    detail,
                    ..
                } => {
                    entry.failures.push(FailureRecord {
                        attempt,
                        kind,
                        detail,
                    });
                    if let JobStatus::Pending { attempt: a, .. } = &mut entry.status {
                        *a = attempt;
                    }
                }
                JobRecord::Quarantine {
                    reason, attempts, ..
                } => {
                    entry.status = JobStatus::Quarantined { reason, attempts };
                }
                JobRecord::Cancelled { .. } => entry.status = JobStatus::Cancelled,
                // an:allow(AN202): same structural invariant as the id
                // extraction above — the outer match already took these.
                JobRecord::Submit { .. } | JobRecord::Shutdown { .. } => unreachable!(),
            }
        }
        Ok(JobBook {
            name,
            jobs,
            torn_tail,
            clean_shutdown,
            max_fence,
        })
    }

    /// Encodes the header record for a fresh job journal.
    pub fn header(name: &str) -> String {
        format!("{JOBS_MAGIC} {}", wire::escape(name))
    }

    /// The next id the server may assign (ids are admission-monotone).
    pub fn next_id(&self) -> u64 {
        self.jobs.keys().next_back().map_or(1, |m| m + 1)
    }

    /// Ids of jobs that still need work, in admission order.
    pub fn pending_ids(&self) -> Vec<u64> {
        self.jobs
            .values()
            .filter(|j| !j.status.is_terminal())
            .map(|j| j.id)
            .collect()
    }

    /// `(done, quarantined, cancelled, pending)` job counts.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut out = (0, 0, 0, 0);
        for j in self.jobs.values() {
            match &j.status {
                JobStatus::Done(_) => out.0 += 1,
                JobStatus::Quarantined { .. } => out.1 += 1,
                JobStatus::Cancelled => out.2 += 1,
                JobStatus::Pending { .. } => out.3 += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellHeuristic, TopologySpec};

    fn spec(label: &str) -> CellSpec {
        CellSpec {
            label: label.into(),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            paths_per_pair: 2,
            heuristic: CellHeuristic::Dp { threshold: 50.0 },
            lo: 0.0,
            hi: 100.0,
            resolution: 2.0,
            probe_cap_nodes: 4_000,
            slice_nodes: 16,
            timeout_secs: None,
            fault_seed: None,
            quantized: None,
        }
    }

    fn submit(id: u64) -> String {
        JobRecord::Submit {
            id,
            client: "alice a.".into(),
            priority: 2,
            threads: 1,
            spec: Box::new(spec(&format!("job-{id}"))),
        }
        .encode()
    }

    #[test]
    fn job_records_round_trip() {
        let outcome = CellOutcome {
            threshold: Some(48.0),
            verified_gap: Some(50.0),
            demands: vec![50.0, 100.0],
            probes: 6,
            nodes: 500,
        };
        let state = spec("x").fresh_state().unwrap();
        let records = [
            JobRecord::Submit {
                id: 3,
                client: "bob".into(),
                priority: 0,
                threads: 4,
                spec: Box::new(spec("a b")),
            },
            JobRecord::Cancel { id: 3 },
            JobRecord::Run { id: 3, attempt: 2, fence: 7 },
            JobRecord::Ckpt {
                id: 3,
                state: Box::new(state),
            },
            JobRecord::Done {
                id: 3,
                outcome: outcome.clone(),
            },
            JobRecord::Fail {
                id: 3,
                attempt: 1,
                kind: "panic".into(),
                detail: "boom at node 7".into(),
            },
            JobRecord::Quarantine {
                id: 3,
                reason: QuarantineReason::WorkerPanic,
                attempts: 3,
            },
            JobRecord::Cancelled { id: 3 },
            JobRecord::Shutdown {
                reason: "drained".into(),
            },
        ];
        for r in records {
            let enc = r.encode();
            let back = JobRecord::decode(&enc).unwrap();
            assert_eq!(back.encode(), enc, "{enc}");
        }
    }

    #[test]
    fn replay_reconstructs_job_lifecycles() {
        let outcome = CellOutcome {
            threshold: Some(48.0),
            verified_gap: Some(50.0),
            demands: vec![50.0],
            probes: 6,
            nodes: 500,
        };
        let ckpt = JobRecord::Ckpt {
            id: 2,
            state: Box::new(spec("x").fresh_state().unwrap()),
        };
        let records = vec![
            JobBook::header("srv"),
            submit(1),
            submit(2),
            submit(3),
            submit(4),
            JobRecord::Run { id: 1, attempt: 1, fence: 1 }.encode(),
            JobRecord::Done {
                id: 1,
                outcome: outcome.clone(),
            }
            .encode(),
            JobRecord::Run { id: 2, attempt: 1, fence: 2 }.encode(),
            ckpt.encode(),
            JobRecord::Cancel { id: 2 }.encode(),
            JobRecord::Fail {
                id: 3,
                attempt: 1,
                kind: "solver".into(),
                detail: "nan".into(),
            }
            .encode(),
            JobRecord::Quarantine {
                id: 3,
                reason: QuarantineReason::ExhaustedRetries,
                attempts: 3,
            }
            .encode(),
            JobRecord::Cancel { id: 4 }.encode(),
            JobRecord::Cancelled { id: 4 }.encode(),
        ];
        let book = JobBook::replay(&records, false).unwrap();
        assert_eq!(book.name, "srv");
        assert_eq!(book.counts(), (1, 1, 1, 1));
        assert_eq!(book.pending_ids(), vec![2]);
        assert_eq!(book.next_id(), 5);
        match &book.jobs[&1].status {
            JobStatus::Done(o) => assert_eq!(*o, outcome),
            other => panic!("{other:?}"),
        }
        match &book.jobs[&2].status {
            JobStatus::Pending {
                resume,
                cancel_requested,
                ..
            } => {
                assert!(resume.is_some());
                assert!(*cancel_requested);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(book.jobs[&2].status.name(), "cancelling");
        assert_eq!(book.jobs[&3].failures.len(), 1);
        assert_eq!(book.jobs[&4].status.name(), "cancelled");
    }

    #[test]
    fn replay_rejects_inconsistent_journals() {
        let cases: Vec<Vec<String>> = vec![
            vec![],                                           // empty
            vec!["not a header".into()],                      // bad magic
            vec![JobBook::header("s"), "run 1 1".into()],     // undeclared id
            vec![JobBook::header("s"), submit(2), submit(2)], // duplicate id
            vec![JobBook::header("s"), submit(2), submit(1)], // non-monotone
            vec![JobBook::header("s"), submit(1), "warp 1 1".into()], // unknown kind
            vec![
                // transition on terminal job
                JobBook::header("s"),
                submit(1),
                JobRecord::Cancelled { id: 1 }.encode(),
                JobRecord::Run { id: 1, attempt: 1, fence: 1 }.encode(),
            ],
        ];
        for records in cases {
            assert!(
                JobBook::replay(&records, false).is_err(),
                "accepted {records:?}"
            );
        }
    }
}
