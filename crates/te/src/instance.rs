//! TE problem instances: topology + demand pairs + pre-chosen paths.

use crate::TeResult;
use metaopt_topology::{all_pairs, paths::path_set, DemandPair, PathSet, Topology};

/// A traffic-engineering instance — Table 1's `(V, E, D, P)` with demand
/// *volumes* left open (they are the adversary's variables in Eq. 1).
#[derive(Debug, Clone)]
pub struct TeInstance {
    /// The capacitated network.
    pub topo: Topology,
    /// Ordered demand pairs (`k` indexes this list everywhere).
    pub pairs: Vec<DemandPair>,
    /// `paths[k]`: the pre-chosen paths of pair `k`, shortest first (the
    /// first entry is Demand Pinning's `p̂_k`).
    pub paths: PathSet,
}

impl TeInstance {
    /// Builds an instance over *all* ordered node pairs with the `k_paths`
    /// shortest paths each (the paper's default is 2).
    pub fn all_pairs(topo: Topology, k_paths: usize) -> TeResult<Self> {
        let pairs = all_pairs(&topo);
        Self::with_pairs(topo, pairs, k_paths)
    }

    /// Builds an instance over an explicit pair list.
    pub fn with_pairs(
        topo: Topology,
        pairs: Vec<DemandPair>,
        k_paths: usize,
    ) -> TeResult<Self> {
        let paths = path_set(&topo, &pairs, k_paths)?;
        Ok(TeInstance { topo, pairs, paths })
    }

    /// Number of demand pairs.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Total path count across pairs.
    pub fn n_paths(&self) -> usize {
        self.paths.iter().map(Vec::len).sum()
    }

    /// The maximum sensible demand volume for adversarial search: one
    /// pair can never usefully exceed the largest edge capacity.
    pub fn demand_cap(&self) -> f64 {
        self.topo.max_capacity()
    }

    /// Validates a demand-volume vector's length.
    pub fn check_demands(&self, demands: &[f64]) -> TeResult<()> {
        if demands.len() != self.n_pairs() {
            return Err(crate::TeError::DemandMismatch {
                expected: self.n_pairs(),
                got: demands.len(),
            });
        }
        Ok(())
    }

    /// A sub-instance restricted to the pairs selected by `keep` (indexes
    /// into `pairs`), preserving path sets; capacities scaled by
    /// `capacity_factor` (POP's resource splitting).
    pub fn restrict(&self, keep: &[usize], capacity_factor: f64) -> TeInstance {
        TeInstance {
            topo: self.topo.scale_capacities(capacity_factor),
            pairs: keep.iter().map(|&k| self.pairs[k]).collect(),
            paths: keep.iter().map(|&k| self.paths[k].clone()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::line;

    #[test]
    fn all_pairs_instance() {
        let inst = TeInstance::all_pairs(line(4, 10.0), 2).unwrap();
        assert_eq!(inst.n_pairs(), 12);
        // A line has exactly one simple path per pair.
        assert_eq!(inst.n_paths(), 12);
        assert_eq!(inst.demand_cap(), 10.0);
    }

    #[test]
    fn restrict_scales_capacity() {
        let inst = TeInstance::all_pairs(line(3, 8.0), 1).unwrap();
        let sub = inst.restrict(&[0, 2], 0.5);
        assert_eq!(sub.n_pairs(), 2);
        assert_eq!(sub.topo.max_capacity(), 4.0);
        assert_eq!(sub.pairs[0], inst.pairs[0]);
        assert_eq!(sub.pairs[1], inst.pairs[2]);
    }

    #[test]
    fn demand_length_checked() {
        let inst = TeInstance::all_pairs(line(3, 1.0), 1).unwrap();
        assert!(inst.check_demands(&[0.0; 6]).is_ok());
        assert!(inst.check_demands(&[0.0; 5]).is_err());
    }
}
