//! Exact big-M gadgets (§3.2 of the paper).
//!
//! The paper encodes Demand Pinning's *or*-constraint and POP client
//! splitting with `max(M(d_k − T_d), 0)`-style right-hand sides. This module
//! provides the standard exact mixed-integer encodings for those constructs:
//! [`max_of_zero`], [`indicator_le`], and the McCormick [`product_binary`].
//!
//! All gadgets need finite ranges for the participating expressions; tight
//! ranges keep relaxations strong and numerics healthy (we never use the
//! astronomically large "big M" of folklore — callers pass the actual data
//! range, e.g. the maximum demand volume).

use crate::expr::LinExpr;
use crate::model::{Model, Sense, VarRef};
use crate::{ModelError, ModelResult};

/// Creates `y = max(expr, 0)` exactly, given finite bounds
/// `lo <= expr <= hi` valid at every feasible point.
///
/// Introduces one continuous variable `y`, one binary `z` (`z = 1` on the
/// `expr >= 0` branch), and four rows:
///
/// ```text
///   y >= expr        y >= 0
///   y <= hi·z        y <= expr − lo·(1 − z)
/// ```
///
/// `expr > 0` forces `z = 1` (else `y <= 0 < expr <= y`), `expr < 0` forces
/// `z = 0` (else `y <= expr < 0 <= y`); both branches then pin `y` exactly.
pub fn max_of_zero(
    model: &mut Model,
    name: &str,
    expr: impl Into<LinExpr>,
    lo: f64,
    hi: f64,
) -> ModelResult<(VarRef, VarRef)> {
    if !lo.is_finite() || !hi.is_finite() {
        return Err(ModelError::MissingBound(format!(
            "max_of_zero({name}) needs finite expression bounds, got [{lo}, {hi}]"
        )));
    }
    let expr = expr.into();
    let y = model.add_var(format!("{name}::max0"), 0.0, hi.max(0.0))?;
    let z = model.add_binary(format!("{name}::max0_ind"))?;
    // y >= expr
    model.constrain_named(
        format!("{name}::max0_ge"),
        LinExpr::from(y) - expr.clone(),
        Sense::Ge,
        0.0,
    )?;
    // y <= hi·z
    model.constrain_named(
        format!("{name}::max0_cap"),
        LinExpr::from(y) - LinExpr::term(z, hi.max(0.0)),
        Sense::Le,
        0.0,
    )?;
    // With L = max(−lo, 0):  y <= expr + L·(1−z)  ⇔  y − expr + L·z <= L
    let l_neg = (-lo).max(0.0);
    model.constrain_named(
        format!("{name}::max0_tight"),
        LinExpr::from(y) - expr + LinExpr::term(z, l_neg),
        Sense::Le,
        LinExpr::constant(l_neg),
    )?;
    Ok((y, z))
}

/// Adds the indicator `z = 1 ⇒ expr <= 0`, given a finite upper bound
/// `expr <= hi` valid at every feasible point: `expr <= hi·(1 − z)`.
pub fn indicator_le(
    model: &mut Model,
    name: &str,
    z: VarRef,
    expr: impl Into<LinExpr>,
    hi: f64,
) -> ModelResult<()> {
    if !hi.is_finite() {
        return Err(ModelError::MissingBound(format!(
            "indicator_le({name}) needs a finite expression bound"
        )));
    }
    let expr = expr.into();
    // expr + hi·z <= hi
    model.constrain_named(
        format!("{name}::ind_le"),
        expr + LinExpr::term(z, hi),
        Sense::Le,
        hi,
    )?;
    Ok(())
}

/// Creates `w = z · x` exactly for binary `z` and `x ∈ [0, x_hi]`
/// (the McCormick envelope, exact when one factor is binary):
///
/// ```text
///   0 <= w <= x_hi·z,     x − x_hi·(1−z) <= w <= x.
/// ```
pub fn product_binary(
    model: &mut Model,
    name: &str,
    z: VarRef,
    x: impl Into<LinExpr>,
    x_hi: f64,
) -> ModelResult<VarRef> {
    if !x_hi.is_finite() || x_hi < 0.0 {
        return Err(ModelError::MissingBound(format!(
            "product_binary({name}) needs a finite nonnegative bound, got {x_hi}"
        )));
    }
    let x = x.into();
    let w = model.add_var(format!("{name}::prod"), 0.0, x_hi)?;
    // w <= x_hi · z
    model.constrain_named(
        format!("{name}::prod_cap"),
        LinExpr::from(w) - LinExpr::term(z, x_hi),
        Sense::Le,
        0.0,
    )?;
    // w <= x
    model.constrain_named(
        format!("{name}::prod_le_x"),
        LinExpr::from(w) - x.clone(),
        Sense::Le,
        0.0,
    )?;
    // w >= x − x_hi·(1 − z)
    model.constrain_named(
        format!("{name}::prod_ge"),
        LinExpr::from(w) - x + LinExpr::term(z, -x_hi),
        Sense::Ge,
        -x_hi,
    )?;
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    /// Enumerates the gadget's truth table by direct assignment checks.
    #[test]
    fn max_of_zero_truth_table() {
        for &(e_val, expect) in &[(-3.0, 0.0), (-0.0, 0.0), (2.5, 2.5), (5.0, 5.0)] {
            let mut m = Model::new();
            let e = m.add_var("e", -5.0, 5.0).unwrap();
            let (y, z) = max_of_zero(&mut m, "t", LinExpr::from(e), -5.0, 5.0).unwrap();
            let mut vals = vec![0.0; m.n_vars()];
            vals[e.0] = e_val;
            vals[y.0] = expect;
            vals[z.0] = if e_val > 0.0 { 1.0 } else { 0.0 };
            assert!(
                m.violation(&vals, 1e-9) <= 1e-9,
                "expr={e_val}: correct assignment rejected ({})",
                m.violation(&vals, 1e-9)
            );
            // A wrong y must violate something for both z values.
            for z_val in [0.0, 1.0] {
                vals[y.0] = expect + 1.0;
                vals[z.0] = z_val;
                assert!(
                    m.violation(&vals, 1e-9) > 1e-6,
                    "expr={e_val}: wrong y accepted with z={z_val}"
                );
            }
        }
    }

    #[test]
    fn max_of_zero_forces_indicator() {
        // expr strictly positive makes z=0 infeasible; strictly negative
        // makes z=1 infeasible.
        let mut m = Model::new();
        let e = m.add_var("e", -4.0, 4.0).unwrap();
        let (y, z) = max_of_zero(&mut m, "t", LinExpr::from(e), -4.0, 4.0).unwrap();
        let mut vals = vec![0.0; m.n_vars()];
        vals[e.0] = 3.0;
        vals[y.0] = 3.0;
        vals[z.0] = 0.0;
        assert!(m.violation(&vals, 1e-9) > 1e-6);
        vals[e.0] = -3.0;
        vals[y.0] = 0.0;
        vals[z.0] = 1.0;
        assert!(m.violation(&vals, 1e-9) > 1e-6);
    }

    #[test]
    fn indicator_le_gates_constraint() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, 10.0).unwrap();
        let z = m.add_binary("z").unwrap();
        // z = 1 ⇒ x <= 2  (expr = x − 2, hi = 8)
        indicator_le(&mut m, "t", z, LinExpr::from(x) - 2.0, 8.0).unwrap();
        // z=1, x=5 must violate; z=0, x=5 must pass.
        assert!(m.violation(&[5.0, 1.0], 1e-9) > 1e-6);
        assert!(m.violation(&[5.0, 0.0], 1e-9) <= 1e-9);
        assert!(m.violation(&[2.0, 1.0], 1e-9) <= 1e-9);
    }

    #[test]
    fn product_binary_is_exact() {
        for &(z_val, x_val) in &[(0.0, 0.0), (0.0, 7.0), (1.0, 0.0), (1.0, 7.0), (1.0, 3.5)] {
            let mut m = Model::new();
            let x = m.add_var("x", 0.0, 10.0).unwrap();
            let z = m.add_binary("z").unwrap();
            let w = product_binary(&mut m, "t", z, LinExpr::from(x), 10.0).unwrap();
            let mut vals = vec![0.0; m.n_vars()];
            vals[x.0] = x_val;
            vals[z.0] = z_val;
            vals[w.0] = z_val * x_val;
            assert!(
                m.violation(&vals, 1e-9) <= 1e-9,
                "({z_val},{x_val}): exact product rejected"
            );
            vals[w.0] = z_val * x_val + 0.5;
            assert!(
                m.violation(&vals, 1e-9) > 1e-6,
                "({z_val},{x_val}): wrong product accepted"
            );
        }
    }

    #[test]
    fn missing_bounds_rejected() {
        let mut m = Model::new();
        let x = m.add_var("x", 0.0, f64::INFINITY).unwrap();
        assert!(max_of_zero(&mut m, "t", LinExpr::from(x), 0.0, f64::INFINITY).is_err());
        let z = m.add_binary("z").unwrap();
        assert!(indicator_le(&mut m, "t", z, LinExpr::from(x), f64::INFINITY).is_err());
        assert!(product_binary(&mut m, "t", z, LinExpr::from(x), f64::NEG_INFINITY).is_err());
    }
}
