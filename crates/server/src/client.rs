//! A minimal std-only HTTP/1.1 client, enough to talk to the job server
//! from the CLI, the drill scripts, and the test suites without shelling
//! out to `curl`. The server always answers `Connection: close`, so the
//! client reads to EOF and then decodes: a `Content-Length` body is taken
//! verbatim, a chunked body is de-chunked.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A decoded response.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Lowercased header names with values.
    pub headers: Vec<(String, String)>,
    /// The decoded body.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of a header (matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Issues one request and reads the full response. `body` implies
/// `Content-Type: application/json`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    timeout: Duration,
) -> io::Result<Response> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n");
    if let Some(b) = body {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            b.len()
        ));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if let Some(b) = body {
        stream.write_all(b)?;
    }
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, why.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let payload = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        dechunk(payload)?
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        payload.get(..len).ok_or_else(|| bad("truncated body"))?.to_vec()
    } else {
        payload.to_vec()
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

/// Decodes a chunked transfer encoding. Tolerates a missing terminal
/// chunk (the server was killed mid-stream) by returning what arrived.
fn dechunk(mut payload: &[u8]) -> io::Result<Vec<u8>> {
    let bad = |why: &str| io::Error::new(io::ErrorKind::InvalidData, why.to_string());
    let mut out = Vec::new();
    loop {
        let Some(line_end) = payload.windows(2).position(|w| w == b"\r\n") else {
            return Ok(out); // torn stream: size line never completed
        };
        let size_text = std::str::from_utf8(&payload[..line_end])
            .map_err(|_| bad("non-UTF8 chunk size"))?
            .trim();
        let size =
            usize::from_str_radix(size_text, 16).map_err(|_| bad("bad chunk size"))?;
        payload = &payload[line_end + 2..];
        if size == 0 {
            return Ok(out);
        }
        if payload.len() < size {
            out.extend_from_slice(payload); // torn stream: partial chunk
            return Ok(out);
        }
        out.extend_from_slice(&payload[..size]);
        payload = &payload[size..];
        payload = payload.strip_prefix(b"\r\n").unwrap_or(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_content_length_response() {
        let r = parse_response(
            b"HTTP/1.1 202 Accepted\r\nContent-Type: application/json\r\nContent-Length: 8\r\n\r\n{\"id\":1}",
        )
        .unwrap();
        assert_eq!(r.status, 202);
        assert_eq!(r.header("content-type"), Some("application/json"));
        assert_eq!(r.text(), "{\"id\":1}");
    }

    #[test]
    fn dechunks_ndjson_streams() {
        let r = parse_response(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nab\ncd\r\n3\r\nef\n\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.text(), "ab\ncdef\n");
    }

    #[test]
    fn tolerates_torn_chunked_streams() {
        // Killed mid-chunk: declared 10 bytes, only 4 arrived.
        let r = parse_response(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\na\r\nabcd",
        )
        .unwrap();
        assert_eq!(r.text(), "abcd");
    }
}
