//! Basis factorization backends: dense inverse and sparse LU.
//!
//! The simplex kernel needs four operations on the basis matrix `B`
//! (the `m` columns currently basic):
//!
//! * FTRAN — solve `B w = a_j` (entering column in basis coordinates),
//! * BTRAN — solve `Bᵀ y = c_B` (duals / pivot rows),
//! * a rank-one **update** after a pivot replaces one basis column,
//! * a from-scratch **refactorization**.
//!
//! Two interchangeable engines implement them behind [`Factors`]:
//!
//! * [`FactorBackend::Dense`] — the original explicit `m × m` inverse,
//!   rebuilt by Gauss–Jordan elimination with partial pivoting and
//!   updated in place by elementary row operations. O(m²) per solve and
//!   per update, O(m³) per refactorization. Kept alive as the
//!   differential-test oracle and for tiny problems.
//! * [`FactorBackend::SparseLU`] — a sparse LU factorization with
//!   Markowitz-threshold pivoting (fill-reducing pivot order constrained
//!   by a relative-magnitude threshold for stability), compressed
//!   column/row storage for the `L` and `U` factors, and product-form
//!   **eta-file** rank-one updates: each pivot appends one elementary
//!   eta matrix `E⁻¹` with `B_k⁻¹ = E_k⁻¹ ⋯ E_1⁻¹ (LU)⁻¹`, so FTRAN
//!   applies the eta file after the triangular solves and BTRAN applies
//!   the transposed etas (newest first) before them. O(nnz) per solve
//!   and per update.
//!
//! Both backends expose the *same* pivot-level semantics — the simplex
//! loops, the `Basis` snapshot/warm-start API, the numerical-recovery
//! ladder, and the obs counters are backend-agnostic. The solver picks
//! the backend from [`crate::SimplexConfig::backend`], which defaults to
//! the `METAOPT_FACTOR` environment variable (`sparse` when unset).
//!
//! Float-comparison audit (AN003 context): this module compares floats
//! in exactly three ways, all deliberate — `v != 0.0` sparsity guards
//! (skipping exact structural zeros is the point of sparse code and is
//! exact in IEEE arithmetic), `|piv| >= threshold` pivot admissibility
//! (a magnitude test, not an equality), and the `1e-12` absolute
//! singularity floor shared with the dense engine so both backends
//! classify the same bases as singular.

use crate::sparse::SparseMat;
use crate::{LpError, LpResult};
use metaopt_resilience::SolverFault;

/// Smallest pivot magnitude either backend accepts during a
/// refactorization; anything below is reported as a singular basis.
/// Shared by both engines so they agree on which bases are singular.
const ABS_PIVOT_MIN: f64 = 1e-12;

/// Markowitz threshold τ: a sparse pivot candidate must satisfy
/// `|v| ≥ τ · max|column|` so fill-reduction never picks a numerically
/// tiny pivot. The classical compromise value.
const MARKOWITZ_TAU: f64 = 0.1;

/// How many smallest-count active columns the Markowitz search scores
/// before settling (widened to every active column when none of the
/// shortlisted candidates has an admissible pivot).
const CAND_COLS: usize = 8;

/// Eta-file growth bound: once the update file holds this many etas the
/// factorization asks for an early refactorization regardless of the
/// solver's pivot-count cadence (a long eta file makes every FTRAN/BTRAN
/// pay for all past pivots; refactoring is O(nnz) and resets it).
const MAX_ETAS: usize = 64;

/// Which basis-factorization engine a [`crate::Simplex`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorBackend {
    /// Explicit dense `m × m` basis inverse (the original engine; exact
    /// oracle for differential tests, fine for small problems).
    Dense,
    /// Sparse LU with Markowitz-threshold pivoting and product-form
    /// eta updates (the default; O(nnz) factor/solve work).
    #[default]
    SparseLU,
}

impl FactorBackend {
    /// Parses a backend name as accepted by `METAOPT_FACTOR`.
    pub fn parse(s: &str) -> Option<FactorBackend> {
        match s.trim().to_ascii_lowercase().as_str() {
            "dense" => Some(FactorBackend::Dense),
            "sparse" | "sparselu" | "sparse_lu" => Some(FactorBackend::SparseLU),
            _ => None,
        }
    }

    /// Resolves the backend from the `METAOPT_FACTOR` environment
    /// variable (`dense` or `sparse`); unset or unrecognized values fall
    /// back to [`FactorBackend::SparseLU`], mirroring how
    /// `METAOPT_THREADS` resolves the parallel mode.
    pub fn from_env() -> FactorBackend {
        std::env::var("METAOPT_FACTOR")
            .ok()
            .as_deref()
            .and_then(FactorBackend::parse)
            .unwrap_or_default()
    }

    /// Stable lowercase name (`dense` / `sparse`), the same vocabulary
    /// `METAOPT_FACTOR` accepts and benchmarks report.
    pub fn name(self) -> &'static str {
        match self {
            FactorBackend::Dense => "dense",
            FactorBackend::SparseLU => "sparse",
        }
    }
}

impl std::fmt::Display for FactorBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn singular(msg: String) -> LpError {
    LpError::Fault(SolverFault::BasisSingular(msg))
}

// ----------------------------------------------------------------------
// Dense engine
// ----------------------------------------------------------------------

/// Explicit dense basis inverse, row-major `m × m`.
#[derive(Debug, Clone)]
pub(crate) struct DenseInverse {
    m: usize,
    binv: Vec<f64>,
}

impl DenseInverse {
    /// Gauss–Jordan elimination with partial pivoting over the current
    /// basis columns.
    fn factorize(cols: &SparseMat, basis: &[usize]) -> LpResult<DenseInverse> {
        let m = basis.len();
        // Dense basis matrix, row-major.
        let mut b = vec![0.0; m * m];
        for (pos, &j) in basis.iter().enumerate() {
            for (r, v) in cols.col(j) {
                b[r * m + pos] = v;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivot.
            let mut piv_row = col;
            let mut piv_val = b[col * m + col].abs();
            for r in (col + 1)..m {
                let v = b[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < ABS_PIVOT_MIN {
                return Err(singular(format!(
                    "singular basis during refactorization (column {col})"
                )));
            }
            if piv_row != col {
                for k in 0..m {
                    b.swap(col * m + k, piv_row * m + k);
                    inv.swap(col * m + k, piv_row * m + k);
                }
            }
            let d = b[col * m + col];
            let dinv = 1.0 / d;
            for k in 0..m {
                b[col * m + k] *= dinv;
                inv[col * m + k] *= dinv;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = b[r * m + col];
                if f != 0.0 {
                    for k in 0..m {
                        b[r * m + k] -= f * b[col * m + k];
                        inv[r * m + k] -= f * inv[col * m + k];
                    }
                }
            }
        }
        Ok(DenseInverse { m, binv: inv })
    }

    fn ftran_dense(&self, rhs: &[f64], out: &mut [f64]) {
        let m = self.m;
        for (pos, o) in out.iter_mut().enumerate().take(m) {
            let row = &self.binv[pos * m..(pos + 1) * m];
            let mut acc = 0.0;
            for (rv, bv) in rhs.iter().zip(row) {
                acc += rv * bv;
            }
            *o = acc;
        }
    }

    fn ftran_col(&self, cols: &SparseMat, j: usize, out: &mut [f64]) {
        let m = self.m;
        out.iter_mut().for_each(|v| *v = 0.0);
        for (r, v) in cols.col(j) {
            // Add v * column r of binv.
            for (i, o) in out.iter_mut().enumerate().take(m) {
                *o += v * self.binv[i * m + r];
            }
        }
    }

    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (pos, &cv) in c.iter().enumerate().take(m) {
            if cv != 0.0 {
                let row = &self.binv[pos * m..(pos + 1) * m];
                for (yk, bv) in y.iter_mut().zip(row) {
                    *yk += cv * bv;
                }
            }
        }
        y
    }

    fn btran_unit(&self, pos: usize) -> Vec<f64> {
        self.binv[pos * self.m..(pos + 1) * self.m].to_vec()
    }

    /// Elementary row operations folding `B⁻¹ ← E⁻¹ B⁻¹` for the pivot
    /// at basis position `pos` with FTRAN column `w`.
    fn update(&mut self, pos: usize, w: &[f64]) {
        let m = self.m;
        let piv = w[pos];
        debug_assert!(piv.abs() > 1e-13);
        let inv_piv = 1.0 / piv;
        // Scale pivot row.
        {
            let row = &mut self.binv[pos * m..(pos + 1) * m];
            for v in row.iter_mut() {
                *v *= inv_piv;
            }
        }
        // Eliminate the entering column from every other row.
        for i in 0..m {
            if i == pos {
                continue;
            }
            let f = w[i];
            if f != 0.0 {
                let (head, tail) = self.binv.split_at_mut(pos.max(i) * m);
                let (src, dst) = if pos < i {
                    (&head[pos * m..(pos + 1) * m], &mut tail[0..m])
                } else {
                    let dst = &mut head[i * m..(i + 1) * m];
                    (&tail[0..m], dst)
                };
                for k in 0..m {
                    dst[k] -= f * src[k];
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Sparse LU engine
// ----------------------------------------------------------------------

/// One product-form eta matrix `E⁻¹ = I + (η − e_pos) e_posᵀ`, recorded
/// when the pivot at basis position `pos` replaced a basis column with
/// FTRAN column `w`: `η_pos = 1/w_pos`, `η_i = −w_i/w_pos`.
#[derive(Debug, Clone)]
struct Eta {
    pos: usize,
    diag: f64,
    /// Off-pivot `(position, η_i)` coefficients.
    entries: Vec<(usize, f64)>,
}

impl Eta {
    /// `x ← E⁻¹ x` (FTRAN direction, position space).
    fn apply(&self, x: &mut [f64]) {
        let t = x[self.pos];
        if t != 0.0 {
            x[self.pos] = self.diag * t;
            for &(i, v) in &self.entries {
                x[i] += v * t;
            }
        }
    }

    /// `x ← E⁻ᵀ x` (BTRAN direction): only the pivot component changes,
    /// to `ηᵀ x`.
    fn apply_transposed(&self, x: &mut [f64]) {
        let mut acc = self.diag * x[self.pos];
        for &(i, v) in &self.entries {
            acc += v * x[i];
        }
        x[self.pos] = acc;
    }
}

/// Sparse LU factors of the basis in elimination order.
///
/// Step `k` of the elimination pivoted on original row `row_of_step[k]`
/// and basis position `pos_of_step[k]`. The `L` factor is stored as
/// per-step compressed columns of elimination multipliers over original
/// rows; the `U` factor as per-step compressed rows over basis
/// positions plus the pivot diagonal. Post-factorization pivots append
/// to the eta file instead of touching `L`/`U`.
#[derive(Debug, Clone)]
pub(crate) struct SparseLu {
    m: usize,
    row_of_step: Vec<usize>,
    pos_of_step: Vec<usize>,
    /// L columns (elimination multipliers), flattened: step `k` owns
    /// `l_row/l_val[l_ptr[k]..l_ptr[k+1]]`.
    l_ptr: Vec<usize>,
    l_row: Vec<usize>,
    l_val: Vec<f64>,
    /// U rows (off-diagonal), flattened over basis positions.
    u_diag: Vec<f64>,
    u_ptr: Vec<usize>,
    u_pos: Vec<usize>,
    u_val: Vec<f64>,
    /// Product-form update file, chronological order.
    etas: Vec<Eta>,
    eta_nnz: usize,
    lu_nnz: usize,
}

impl SparseLu {
    /// Right-looking sparse LU with Markowitz-threshold pivoting.
    ///
    /// At each step the pivot minimizes the Markowitz fill bound
    /// `(row_count − 1)(col_count − 1)` over the [`CAND_COLS`]
    /// smallest active columns, restricted to entries passing the
    /// `|v| ≥ τ·colmax` stability threshold; the search widens to every
    /// active column before declaring the basis singular.
    fn factorize(cols: &SparseMat, basis: &[usize]) -> LpResult<SparseLu> {
        let m = basis.len();
        // Active submatrix, column-wise per basis position.
        let mut acol: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        let mut row_count = vec![0usize; m];
        for &j in basis {
            let col: Vec<(usize, f64)> = cols.col(j).filter(|&(_, v)| v != 0.0).collect();
            for &(r, _) in &col {
                row_count[r] += 1;
            }
            acol.push(col);
        }
        // Row → candidate columns incidence (append-only; may hold stale
        // positions that the per-column scan below skips).
        let mut row_cols: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (p, col) in acol.iter().enumerate() {
            for &(r, _) in col {
                row_cols[r].push(p);
            }
        }
        let mut col_done = vec![false; m];
        let mut row_of_step = Vec::with_capacity(m);
        let mut pos_of_step = Vec::with_capacity(m);
        let mut u_diag = Vec::with_capacity(m);
        let mut l_ptr = Vec::with_capacity(m + 1);
        l_ptr.push(0usize);
        let mut l_row: Vec<usize> = Vec::new();
        let mut l_val: Vec<f64> = Vec::new();
        let mut u_ptr = Vec::with_capacity(m + 1);
        u_ptr.push(0usize);
        let mut u_pos: Vec<usize> = Vec::new();
        let mut u_val: Vec<f64> = Vec::new();
        // Scatter scratch for column elimination (epoch-stamped so it is
        // never cleared).
        let mut scratch = vec![0.0_f64; m];
        let mut stamp = vec![0usize; m];
        let mut epoch = 0usize;

        // Best admissible pivot within one column: (row, value, cost).
        let score_col = |acol: &[Vec<(usize, f64)>],
                         row_count: &[usize],
                         p: usize|
         -> Option<(usize, f64, usize)> {
            let col = &acol[p];
            let colmax = col.iter().fold(0.0_f64, |a, &(_, v)| a.max(v.abs()));
            if colmax < ABS_PIVOT_MIN {
                return None;
            }
            let threshold = (MARKOWITZ_TAU * colmax).max(ABS_PIVOT_MIN);
            let cc = col.len();
            let mut best: Option<(usize, f64, usize)> = None;
            for &(r, v) in col {
                if v.abs() < threshold {
                    continue;
                }
                let cost = (row_count[r] - 1) * (cc - 1);
                let better = match best {
                    None => true,
                    Some((_, bv, bc)) => cost < bc || (cost == bc && v.abs() > bv.abs()),
                };
                if better {
                    best = Some((r, v, cost));
                }
            }
            best
        };

        for _step in 0..m {
            // ---- Markowitz pivot search ----
            // Shortlist the CAND_COLS smallest active columns.
            let mut cand: Vec<usize> = Vec::with_capacity(CAND_COLS);
            for p in 0..m {
                if col_done[p] {
                    continue;
                }
                if acol[p].is_empty() {
                    return Err(singular(format!(
                        "singular basis during refactorization (column {p})"
                    )));
                }
                match cand.iter().position(|&q| acol[q].len() > acol[p].len()) {
                    Some(at) => cand.insert(at, p),
                    None => cand.push(p),
                }
                cand.truncate(CAND_COLS);
            }
            let mut pick: Option<(usize, usize, f64, usize)> = None; // (pos, row, val, cost)
            let consider = |pick: &mut Option<(usize, usize, f64, usize)>, p: usize| {
                if let Some((r, v, cost)) = score_col(&acol, &row_count, p) {
                    let better = match *pick {
                        None => true,
                        Some((_, _, bv, bc)) => {
                            cost < bc || (cost == bc && v.abs() > bv.abs())
                        }
                    };
                    if better {
                        *pick = Some((p, r, v, cost));
                    }
                }
            };
            for &p in &cand {
                consider(&mut pick, p);
            }
            if pick.is_none() {
                // No stable pivot among the fill-minimizing candidates;
                // widen to every active column before giving up.
                for (p, &done) in col_done.iter().enumerate().take(m) {
                    if !done {
                        consider(&mut pick, p);
                    }
                }
            }
            let Some((pp, pr, piv, _)) = pick else {
                return Err(singular(
                    "singular basis during refactorization (no admissible pivot)".into(),
                ));
            };

            // ---- record the pivot: L column and released counts ----
            let mut lcol: Vec<(usize, f64)> = Vec::with_capacity(acol[pp].len() - 1);
            for &(r, v) in &acol[pp] {
                row_count[r] -= 1;
                if r != pr {
                    lcol.push((r, v / piv));
                }
            }
            for &(r, lm) in &lcol {
                l_row.push(r);
                l_val.push(lm);
            }
            l_ptr.push(l_row.len());
            acol[pp].clear();
            col_done[pp] = true;
            row_of_step.push(pr);
            pos_of_step.push(pp);
            u_diag.push(piv);

            // ---- U row + Schur-complement elimination ----
            let touched_cols = std::mem::take(&mut row_cols[pr]);
            for p in touched_cols {
                if col_done[p] {
                    continue;
                }
                // Duplicate incidence entries find no pr entry the
                // second time around and fall through here.
                let Some(k) = acol[p].iter().position(|&(r, _)| r == pr) else {
                    continue;
                };
                let upv = acol[p][k].1;
                u_pos.push(p);
                u_val.push(upv);
                // acol[p] ← acol[p] − upv·lcol, dropping row pr.
                epoch += 1;
                let mut touched: Vec<usize> =
                    Vec::with_capacity(acol[p].len() + lcol.len());
                for &(r, v) in &acol[p] {
                    row_count[r] -= 1;
                    if r == pr {
                        continue;
                    }
                    scratch[r] = v;
                    stamp[r] = epoch;
                    touched.push(r);
                }
                for &(r, lm) in &lcol {
                    if stamp[r] == epoch {
                        scratch[r] -= lm * upv;
                    } else {
                        scratch[r] = -lm * upv;
                        stamp[r] = epoch;
                        touched.push(r);
                        row_cols[r].push(p); // fill-in incidence
                    }
                }
                let mut newcol = Vec::with_capacity(touched.len());
                for r in touched {
                    let v = scratch[r];
                    // Exact cancellations leave the sparsity pattern.
                    if v != 0.0 {
                        row_count[r] += 1;
                        newcol.push((r, v));
                    }
                }
                acol[p] = newcol;
            }
            u_ptr.push(u_pos.len());
        }

        let lu_nnz = l_row.len() + u_pos.len() + m;
        Ok(SparseLu {
            m,
            row_of_step,
            pos_of_step,
            l_ptr,
            l_row,
            l_val,
            u_diag,
            u_ptr,
            u_pos,
            u_val,
            etas: Vec::new(),
            eta_nnz: 0,
            lu_nnz,
        })
    }

    /// Triangular solves for `B w = rhs` (`rhs` in row space, `w` by
    /// basis position), then the eta file in chronological order.
    fn solve_from_scattered(&self, x: &mut [f64], out: &mut [f64]) {
        let m = self.m;
        // Forward eliminate: x ← L⁻¹ x (apply E_k in pivot order).
        for k in 0..m {
            let t = x[self.row_of_step[k]];
            if t != 0.0 {
                for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                    x[self.l_row[idx]] -= self.l_val[idx] * t;
                }
            }
        }
        // Back substitution on U (reverse pivot order).
        for k in (0..m).rev() {
            let mut acc = x[self.row_of_step[k]];
            for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                acc -= self.u_val[idx] * out[self.u_pos[idx]];
            }
            out[self.pos_of_step[k]] = acc / self.u_diag[k];
        }
        for eta in &self.etas {
            eta.apply(out);
        }
    }

    fn ftran_dense(&self, rhs: &[f64], out: &mut [f64]) {
        let mut x = rhs.to_vec();
        self.solve_from_scattered(&mut x, out);
    }

    fn ftran_col(&self, cols: &SparseMat, j: usize, out: &mut [f64]) {
        let mut x = vec![0.0; self.m];
        for (r, v) in cols.col(j) {
            // push_col already summed duplicates; plain assignment-add
            // keeps any residual exact-zero entries harmless.
            x[r] += v;
        }
        self.solve_from_scattered(&mut x, out);
    }

    /// `Bᵀ y = c` with `c` indexed by basis position; `y` in row space.
    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let m = self.m;
        let mut cw = c.to_vec();
        // Transposed eta file, newest first: Bᵀ = (LU·E₁⋯E_k)ᵀ.
        for eta in self.etas.iter().rev() {
            eta.apply_transposed(&mut cw);
        }
        // Uᵀ is lower triangular in step order: forward substitution.
        let mut y = vec![0.0; m];
        for k in 0..m {
            let v = cw[self.pos_of_step[k]] / self.u_diag[k];
            if v != 0.0 {
                for idx in self.u_ptr[k]..self.u_ptr[k + 1] {
                    cw[self.u_pos[idx]] -= self.u_val[idx] * v;
                }
            }
            y[self.row_of_step[k]] = v;
        }
        // Lᵀ: apply E_kᵀ ⋯ E_1ᵀ means visiting steps in reverse order.
        for k in (0..m).rev() {
            let mut acc = y[self.row_of_step[k]];
            for idx in self.l_ptr[k]..self.l_ptr[k + 1] {
                acc -= self.l_val[idx] * y[self.l_row[idx]];
            }
            y[self.row_of_step[k]] = acc;
        }
        y
    }

    fn btran_unit(&self, pos: usize) -> Vec<f64> {
        let mut c = vec![0.0; self.m];
        c[pos] = 1.0;
        self.btran(&c)
    }

    /// Appends the product-form eta for a pivot at position `pos` with
    /// FTRAN column `w`.
    fn update(&mut self, pos: usize, w: &[f64]) {
        let piv = w[pos];
        debug_assert!(piv.abs() > 1e-13);
        let inv_piv = 1.0 / piv;
        let mut entries = Vec::new();
        for (i, &wi) in w.iter().enumerate().take(self.m) {
            if i != pos && wi != 0.0 {
                entries.push((i, -wi * inv_piv));
            }
        }
        self.eta_nnz += entries.len() + 1;
        self.etas.push(Eta {
            pos,
            diag: inv_piv,
            entries,
        });
    }

    /// Early-refactorization hint: the eta file has grown past the point
    /// where replaying it costs more than a fresh O(nnz) factorization.
    fn wants_refactor(&self) -> bool {
        self.etas.len() >= MAX_ETAS || self.eta_nnz > 2 * (self.lu_nnz + self.m)
    }
}

// ----------------------------------------------------------------------
// Backend dispatch
// ----------------------------------------------------------------------

/// The current basis factorization, whichever engine produced it.
// The solver owns exactly one `Factors` for its whole lifetime, so the
// Dense-vs-Sparse size skew costs a few idle words, not allocation
// churn; boxing the large variant would add a pointer chase to every
// FTRAN/BTRAN instead.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum Factors {
    Dense(DenseInverse),
    Sparse(SparseLu),
}

impl Factors {
    /// A placeholder before the first refactorization (the solver never
    /// solves through it — `start_basis`/`install_basis` factorize
    /// before any FTRAN/BTRAN).
    pub(crate) fn empty(backend: FactorBackend) -> Factors {
        match backend {
            FactorBackend::Dense => Factors::Dense(DenseInverse {
                m: 0,
                binv: Vec::new(),
            }),
            FactorBackend::SparseLU => Factors::Sparse(SparseLu {
                m: 0,
                row_of_step: Vec::new(),
                pos_of_step: Vec::new(),
                l_ptr: vec![0],
                l_row: Vec::new(),
                l_val: Vec::new(),
                u_diag: Vec::new(),
                u_ptr: vec![0],
                u_pos: Vec::new(),
                u_val: Vec::new(),
                etas: Vec::new(),
                eta_nnz: 0,
                lu_nnz: 0,
            }),
        }
    }

    /// Factorizes the basis `B = cols[basis]` from scratch.
    pub(crate) fn factorize(
        backend: FactorBackend,
        cols: &SparseMat,
        basis: &[usize],
    ) -> LpResult<Factors> {
        match backend {
            FactorBackend::Dense => DenseInverse::factorize(cols, basis).map(Factors::Dense),
            FactorBackend::SparseLU => SparseLu::factorize(cols, basis).map(Factors::Sparse),
        }
    }

    /// `w = B⁻¹ a_j` for column `j` of `cols`; `w` by basis position.
    pub(crate) fn ftran_col(&self, cols: &SparseMat, j: usize, out: &mut [f64]) {
        match self {
            Factors::Dense(d) => d.ftran_col(cols, j, out),
            Factors::Sparse(s) => s.ftran_col(cols, j, out),
        }
    }

    /// `w = B⁻¹ rhs` for a dense row-space right-hand side.
    pub(crate) fn ftran_dense(&self, rhs: &[f64], out: &mut [f64]) {
        match self {
            Factors::Dense(d) => d.ftran_dense(rhs, out),
            Factors::Sparse(s) => s.ftran_dense(rhs, out),
        }
    }

    /// `y = B⁻ᵀ c` with `c` indexed by basis position; `y` in row space.
    pub(crate) fn btran(&self, c: &[f64]) -> Vec<f64> {
        match self {
            Factors::Dense(d) => d.btran(c),
            Factors::Sparse(s) => s.btran(c),
        }
    }

    /// Row `pos` of `B⁻¹` (`ρ = e_posᵀ B⁻¹`) — the shared pivot row that
    /// drives devex weights, incremental dual updates, and the dual
    /// simplex ratio test on either backend.
    pub(crate) fn btran_unit(&self, pos: usize) -> Vec<f64> {
        match self {
            Factors::Dense(d) => d.btran_unit(pos),
            Factors::Sparse(s) => s.btran_unit(pos),
        }
    }

    /// Rank-one update after the pivot at basis position `pos` with
    /// FTRAN column `w` (dense: elementary row ops on the inverse;
    /// sparse: one product-form eta).
    pub(crate) fn update(&mut self, pos: usize, w: &[f64]) {
        match self {
            Factors::Dense(d) => d.update(pos, w),
            Factors::Sparse(s) => s.update(pos, w),
        }
    }

    /// Whether the factorization itself asks for an early
    /// refactorization (sparse eta-file growth; dense never does).
    pub(crate) fn wants_refactor(&self) -> bool {
        match self {
            Factors::Dense(_) => false,
            Factors::Sparse(s) => s.wants_refactor(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3×3 test basis with a hand-checked inverse:
    /// B = [[2,0,1],[0,3,0],[0,0,4]]  ⇒
    /// B⁻¹ = [[.5,0,−.125],[0,1/3,0],[0,0,.25]].
    fn upper_triangular() -> (SparseMat, Vec<usize>) {
        let mut cols = SparseMat::new(3);
        cols.push_col([(0, 2.0)]);
        cols.push_col([(1, 3.0)]);
        cols.push_col([(0, 1.0), (2, 4.0)]);
        (cols, vec![0, 1, 2])
    }

    /// Dense 3×3 with no structural zeros and a known inverse:
    /// B = [[1,2,0],[0,1,1],[1,0,1]], det = 3.
    fn full_basis() -> (SparseMat, Vec<usize>) {
        let mut cols = SparseMat::new(3);
        cols.push_col([(0, 1.0), (2, 1.0)]);
        cols.push_col([(0, 2.0), (1, 1.0)]);
        cols.push_col([(1, 1.0), (2, 1.0)]);
        (cols, vec![0, 1, 2])
    }

    fn both(cols: &SparseMat, basis: &[usize]) -> (Factors, Factors) {
        (
            Factors::factorize(FactorBackend::Dense, cols, basis).unwrap(),
            Factors::factorize(FactorBackend::SparseLU, cols, basis).unwrap(),
        )
    }

    #[test]
    fn env_parsing() {
        assert_eq!(FactorBackend::parse("dense"), Some(FactorBackend::Dense));
        assert_eq!(FactorBackend::parse("Sparse"), Some(FactorBackend::SparseLU));
        assert_eq!(FactorBackend::parse("sparse_lu"), Some(FactorBackend::SparseLU));
        assert_eq!(FactorBackend::parse("qr"), None);
        assert_eq!(FactorBackend::default(), FactorBackend::SparseLU);
        assert_eq!(FactorBackend::Dense.name(), "dense");
        assert_eq!(FactorBackend::SparseLU.to_string(), "sparse");
    }

    #[test]
    fn golden_ftran_on_hand_checked_basis() {
        let (mut cols, basis) = upper_triangular();
        // a = e0·1 + e2·8 ⇒ B⁻¹a = (.5·1 − .125·8, 0, .25·8) = (−0.5, 0, 2).
        let a = cols.push_col([(0, 1.0), (2, 8.0)]);
        for f in [
            Factors::factorize(FactorBackend::Dense, &cols, &basis).unwrap(),
            Factors::factorize(FactorBackend::SparseLU, &cols, &basis).unwrap(),
        ] {
            let mut w = vec![0.0; 3];
            f.ftran_col(&cols, a, &mut w);
            assert!((w[0] + 0.5).abs() < 1e-12, "{w:?}");
            assert!(w[1].abs() < 1e-12);
            assert!((w[2] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn golden_btran_on_full_basis() {
        let (cols, basis) = full_basis();
        let (dense, sparse) = both(&cols, &basis);
        let c = vec![3.0, 3.0, 3.0];
        let yd = dense.btran(&c);
        let ys = sparse.btran(&c);
        for (a, b) in yd.iter().zip(&ys) {
            assert!((a - b).abs() < 1e-12, "dense {yd:?} vs sparse {ys:?}");
        }
        // And both must satisfy Bᵀy = c exactly.
        for (pos, &j) in basis.iter().enumerate() {
            let lhs = cols.col_dot(j, &ys);
            assert!((lhs - c[pos]).abs() < 1e-12);
        }
    }

    #[test]
    fn ftran_btran_round_trip() {
        let (cols, basis) = full_basis();
        let (_, sparse) = both(&cols, &basis);
        // For any c: (Bᵀy)ᵀ = c means Σ_r y_r B[r][pos] = c[pos]; verify the
        // adjoint identity ⟨B⁻¹a, c⟩ = ⟨a, B⁻ᵀc⟩ over a few vectors.
        let mut cols2 = cols.clone();
        let a = cols2.push_col([(0, 1.0), (1, -2.0), (2, 0.5)]);
        let mut w = vec![0.0; 3];
        sparse.ftran_col(&cols2, a, &mut w);
        let c = vec![0.7, -1.3, 2.2];
        let y = sparse.btran(&c);
        let lhs: f64 = w.iter().zip(&c).map(|(a, b)| a * b).sum();
        let rhs: f64 = cols2.col(a).map(|(r, v)| v * y[r]).sum();
        assert!((lhs - rhs).abs() < 1e-12, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn eta_update_matches_refactorization() {
        let (mut cols, basis) = full_basis();
        // Replace basis position 1 with a new column.
        let q = cols.push_col([(0, 1.0), (1, 4.0), (2, -1.0)]);
        let (mut dense, mut sparse) = both(&cols, &basis);
        let mut wd = vec![0.0; 3];
        let mut ws = vec![0.0; 3];
        dense.ftran_col(&cols, q, &mut wd);
        sparse.ftran_col(&cols, q, &mut ws);
        dense.update(1, &wd);
        sparse.update(1, &ws);
        let mut new_basis = basis.clone();
        new_basis[1] = q;
        let fresh = Factors::factorize(FactorBackend::SparseLU, &cols, &new_basis).unwrap();
        // Updated and freshly factorized engines must agree on solves.
        let probe = cols.push_col([(0, -3.0), (1, 1.0), (2, 2.0)]);
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        let mut c = vec![0.0; 3];
        dense.ftran_col(&cols, probe, &mut a);
        sparse.ftran_col(&cols, probe, &mut b);
        fresh.ftran_col(&cols, probe, &mut c);
        for i in 0..3 {
            assert!((a[i] - b[i]).abs() < 1e-12, "dense-upd vs sparse-upd: {a:?} {b:?}");
            assert!((b[i] - c[i]).abs() < 1e-12, "sparse-upd vs fresh: {b:?} {c:?}");
        }
        let yu = sparse.btran_unit(2);
        let yf = fresh.btran_unit(2);
        for (u, f) in yu.iter().zip(&yf) {
            assert!((u - f).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_basis_is_reported_not_panicked() {
        let mut cols = SparseMat::new(2);
        let c0 = cols.push_col([(0, 1.0), (1, 1.0)]);
        let c1 = cols.push_col([(0, 2.0), (1, 2.0)]); // linearly dependent
        for backend in [FactorBackend::Dense, FactorBackend::SparseLU] {
            let err = Factors::factorize(backend, &cols, &[c0, c1]).unwrap_err();
            assert!(
                matches!(err, LpError::Fault(SolverFault::BasisSingular(_))),
                "{backend}: {err:?}"
            );
        }
    }

    #[test]
    fn structurally_empty_column_is_singular() {
        let mut cols = SparseMat::new(2);
        let c0 = cols.push_col([(0, 1.0)]);
        let c1 = cols.push_col([] as [(usize, f64); 0]);
        let err = Factors::factorize(FactorBackend::SparseLU, &cols, &[c0, c1]).unwrap_err();
        assert!(matches!(err, LpError::Fault(SolverFault::BasisSingular(_))));
    }

    #[test]
    fn eta_file_growth_requests_refactor() {
        let (cols, basis) = full_basis();
        let (_, mut sparse) = both(&cols, &basis);
        assert!(!sparse.wants_refactor());
        // Dense-ish update vectors blow the eta budget quickly.
        for _ in 0..MAX_ETAS {
            sparse.update(0, &[1.0, 0.5, -0.5]);
        }
        assert!(sparse.wants_refactor());
    }

    #[test]
    fn identity_permutation_bases_factor_exactly() {
        // The all-logical start basis (−e_i columns) in scrambled order.
        let mut cols = SparseMat::new(4);
        for i in 0..4 {
            cols.push_col([(i, -1.0)]);
        }
        let basis = vec![2, 0, 3, 1];
        let (dense, sparse) = both(&cols, &basis);
        for (pos, &bj) in basis.iter().enumerate() {
            let yd = dense.btran_unit(pos);
            let ys = sparse.btran_unit(pos);
            assert_eq!(yd, ys, "position {pos}");
            // Row `basis[pos]` of B⁻¹ is −e_{basis[pos]} exactly.
            for (r, &v) in ys.iter().enumerate() {
                let expect = if r == bj { -1.0 } else { 0.0 };
                assert_eq!(v, expect);
            }
        }
    }
}
