//! Builders for the `FeasibleFlow` polytope (Eq. 2 of the paper).
//!
//! Two forms are provided: a *symbolic* form whose demand volumes are
//! arbitrary linear expressions over an enclosing model's variables (used
//! by the adversarial rewrite, where volumes are the leader's variables),
//! and a *concrete* LP form for the fast evaluators.

use crate::instance::TeInstance;
use crate::{FlowVars, TeResult};
use metaopt_lp::{LpProblem, RowSense, VarId, INF};
use metaopt_model::{InnerProblem, LinExpr, Model, Sense};

/// Per-edge incidence: which `(pair, path)` combinations cross each edge.
pub fn edge_incidence(inst: &TeInstance) -> Vec<Vec<(usize, usize)>> {
    let mut inc = vec![Vec::new(); inst.topo.n_edges()];
    for (k, paths) in inst.paths.iter().enumerate() {
        for (p, path) in paths.iter().enumerate() {
            for &e in &path.edges {
                inc[e.0].push((k, p));
            }
        }
    }
    inc
}

/// Emits `FeasibleFlow(V, E, D, P)` as an [`InnerProblem`] inside `model`,
/// with capacities taken from the instance's topology.
///
/// `demand_exprs[k]` is the (possibly symbolic) volume `d_k`; flow
/// variables are created *inside the inner problem* so their nonnegativity
/// bounds obtain KKT multipliers. The inner objective is left unset — use
/// [`FlowVars::total_flow`] with `set_objective` for `OptMaxFlow` (Eq. 3).
pub fn feasible_flow_inner(
    model: &mut Model,
    name: &str,
    inst: &TeInstance,
    demand_exprs: &[LinExpr],
) -> TeResult<(InnerProblem, FlowVars)> {
    let caps: Vec<LinExpr> = inst
        .topo
        .edges()
        .map(|e| LinExpr::constant(inst.topo.capacity(e)))
        .collect();
    feasible_flow_inner_caps(model, name, inst, demand_exprs, &caps)
}

/// [`feasible_flow_inner`] with *symbolic* edge capacities (`cap_exprs[e]`
/// replaces `c_e`) — the building block of §5's "topology changes that
/// cause the worst-case gap": capacities become leader variables while
/// remaining constants to the follower LPs.
pub fn feasible_flow_inner_caps(
    model: &mut Model,
    name: &str,
    inst: &TeInstance,
    demand_exprs: &[LinExpr],
    cap_exprs: &[LinExpr],
) -> TeResult<(InnerProblem, FlowVars)> {
    assert_eq!(demand_exprs.len(), inst.n_pairs());
    assert_eq!(cap_exprs.len(), inst.topo.n_edges());
    let mut inner = InnerProblem::new(name);
    let mut per_pair = Vec::with_capacity(inst.n_pairs());
    for (k, paths) in inst.paths.iter().enumerate() {
        let mut vars = Vec::with_capacity(paths.len());
        for p in 0..paths.len() {
            // f_k^p >= 0 (upper bound open; the demand row caps it).
            let v = inner.add_var(model, format!("{name}::f[{k}][{p}]"), 0.0, f64::INFINITY)?;
            vars.push(v);
        }
        per_pair.push(vars);
    }
    let flows = FlowVars { per_pair };

    // Demand rows: Σ_p f_k^p <= d_k.
    for (k, dk) in demand_exprs.iter().enumerate().take(inst.n_pairs()) {
        inner.constrain_named(
            format!("{name}::dem[{k}]"),
            flows.pair_flow(k) - dk.clone(),
            Sense::Le,
        )?;
    }
    // Capacity rows: Σ_{(k,p) ∋ e} f_k^p <= c_e.
    for (e, users) in edge_incidence(inst).into_iter().enumerate() {
        if users.is_empty() {
            continue;
        }
        let mut load = LinExpr::zero();
        for (k, p) in users {
            load.add_term(flows.per_pair[k][p], 1.0);
        }
        inner.constrain_named(
            format!("{name}::cap[{e}]"),
            load - cap_exprs[e].clone(),
            Sense::Le,
        )?;
    }
    Ok((inner, flows))
}

/// Emits `FeasibleFlow` with concrete demand volumes as a plain LP,
/// maximizing total flow (i.e. `OptMaxFlow`, Eq. 3, in minimization form
/// with negated objective). Returns the LP and the flow-variable grid.
pub fn opt_max_flow_lp(inst: &TeInstance, demands: &[f64]) -> TeResult<(LpProblem, Vec<Vec<VarId>>)> {
    inst.check_demands(demands)?;
    let mut lp = LpProblem::new();
    let mut grid = Vec::with_capacity(inst.n_pairs());
    for paths in inst.paths.iter() {
        let vars: Vec<VarId> = (0..paths.len())
            .map(|_| lp.add_var(0.0, INF, -1.0))
            .collect::<Result<_, _>>()?;
        grid.push(vars);
    }
    for (k, vars) in grid.iter().enumerate() {
        lp.add_row(
            RowSense::Le,
            demands[k].max(0.0),
            vars.iter().map(|&v| (v, 1.0)),
        )?;
    }
    for (e, users) in edge_incidence(inst).into_iter().enumerate() {
        if users.is_empty() {
            continue;
        }
        lp.add_row(
            RowSense::Le,
            inst.topo.capacity(metaopt_topology::EdgeId(e)),
            users.into_iter().map(|(k, p)| (grid[k][p], 1.0)),
        )?;
    }
    Ok((lp, grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_lp::Simplex;
    use metaopt_topology::synth::line;

    #[test]
    fn incidence_covers_paths() {
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let inc = edge_incidence(&inst);
        let total: usize = inc.iter().map(Vec::len).sum();
        // Each path contributes one incidence entry per hop.
        let hops: usize = inst
            .paths
            .iter()
            .flat_map(|ps| ps.iter().map(metaopt_topology::Path::len))
            .sum();
        assert_eq!(total, hops);
    }

    #[test]
    fn concrete_lp_maximizes_flow() {
        // Line 0-1-2 with capacity 10; demands: 0→2: 8, 0→1: 5, 1→2: 4.
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let mut demands = vec![0.0; inst.n_pairs()];
        for (k, &(s, d)) in inst.pairs.iter().enumerate() {
            match (s.0, d.0) {
                (0, 2) => demands[k] = 8.0,
                (0, 1) => demands[k] = 5.0,
                (1, 2) => demands[k] = 4.0,
                _ => {}
            }
        }
        let (lp, _) = opt_max_flow_lp(&inst, &demands).unwrap();
        let sol = Simplex::new(&lp).solve().unwrap();
        // Capacity 10 on each of the two directed forward edges; total
        // carried is maximized at 10 + 10 = 20 units of edge usage →
        // carried flow: f02 + f01 <= 10, f02 + f12 <= 10; max f01+f02+f12
        // = 5 + 4 + min(8, 10-5, 10-4) = 5 + 4 + 5 = 14.
        assert!((sol.objective + 14.0).abs() < 1e-7, "obj {}", sol.objective);
    }

    #[test]
    fn symbolic_inner_matches_concrete() {
        use metaopt_model::{kkt, Model, ObjSense};
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let mut m = Model::new();
        // Fixed demand volumes as fixed outer variables.
        let demand_vals = vec![3.0; inst.n_pairs()];
        let exprs: Vec<LinExpr> = demand_vals.iter().map(|&v| LinExpr::constant(v)).collect();
        let (mut inner, flows) = feasible_flow_inner(&mut m, "opt", &inst, &exprs).unwrap();
        inner.set_objective(ObjSense::Max, flows.total_flow());
        kkt::append_kkt(&mut m, &inner, 1e4).unwrap();
        // Solve the KKT system by branch-and-bound in the milp crate's
        // tests; here just sanity-check sizes.
        assert_eq!(m.n_complementarities(), inst.n_paths() * 2 + inst.topo.n_edges());
        let _ = flows;
    }
}
