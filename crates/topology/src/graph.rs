//! Directed capacitated graphs.

use crate::{TopoResult, TopologyError};

/// Handle to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Handle to a directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

#[derive(Debug, Clone)]
struct Edge {
    src: usize,
    dst: usize,
    capacity: f64,
    weight: f64,
}

/// A directed capacitated graph with named nodes.
///
/// Edge *weights* drive shortest-path computations (default 1.0 = hop
/// count); *capacities* bound flow in the TE formulations.
///
/// ```
/// use metaopt_topology::Topology;
///
/// let mut t = Topology::new("demo");
/// let a = t.add_node("a");
/// let b = t.add_node("b");
/// t.add_link(a, b, 100.0)?; // both directions
/// assert_eq!(t.n_edges(), 2);
/// assert_eq!(t.total_capacity(), 200.0);
/// # Ok::<(), metaopt_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    name: String,
    node_names: Vec<String>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    out_edges: Vec<Vec<usize>>,
}

impl Topology {
    /// Creates an empty topology with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a node.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.node_names.push(name.into());
        self.out_edges.push(Vec::new());
        NodeId(self.node_names.len() - 1)
    }

    /// Adds `n` nodes named `prefix0..prefix(n-1)`, returning their ids.
    pub fn add_nodes(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n).map(|i| self.add_node(format!("{prefix}{i}"))).collect()
    }

    /// Adds a directed edge with unit weight.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, capacity: f64) -> TopoResult<EdgeId> {
        self.add_weighted_edge(src, dst, capacity, 1.0)
    }

    /// Adds a directed edge with an explicit shortest-path weight.
    pub fn add_weighted_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: f64,
        weight: f64,
    ) -> TopoResult<EdgeId> {
        if src.0 >= self.n_nodes() {
            return Err(TopologyError::BadNode(src.0));
        }
        if dst.0 >= self.n_nodes() {
            return Err(TopologyError::BadNode(dst.0));
        }
        if src == dst {
            return Err(TopologyError::SelfLoop(src.0));
        }
        if !capacity.is_finite() || capacity <= 0.0 {
            return Err(TopologyError::BadCapacity(capacity));
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(TopologyError::BadCapacity(weight));
        }
        self.edges.push(Edge {
            src: src.0,
            dst: dst.0,
            capacity,
            weight,
        });
        let id = self.edges.len() - 1;
        self.out_edges[src.0].push(id);
        Ok(EdgeId(id))
    }

    /// Adds both directions of a physical link with equal capacity.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
    ) -> TopoResult<(EdgeId, EdgeId)> {
        Ok((self.add_edge(a, b, capacity)?, self.add_edge(b, a, capacity)?))
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n_nodes()).map(NodeId)
    }

    /// All edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.n_edges()).map(EdgeId)
    }

    /// Endpoints `(src, dst)` of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let ed = &self.edges[e.0];
        (NodeId(ed.src), NodeId(ed.dst))
    }

    /// Capacity of an edge.
    pub fn capacity(&self, e: EdgeId) -> f64 {
        self.edges[e.0].capacity
    }

    /// Overwrites the capacity of an edge.
    pub fn set_capacity(&mut self, e: EdgeId, capacity: f64) -> TopoResult<()> {
        if !capacity.is_finite() || capacity <= 0.0 {
            return Err(TopologyError::BadCapacity(capacity));
        }
        self.edges[e.0].capacity = capacity;
        Ok(())
    }

    /// Shortest-path weight of an edge.
    pub fn weight(&self, e: EdgeId) -> f64 {
        self.edges[e.0].weight
    }

    /// Node name.
    pub fn node_name(&self, n: NodeId) -> &str {
        &self.node_names[n.0]
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_edges[n.0].iter().map(|&e| EdgeId(e))
    }

    /// Sum of all edge capacities (the normalizer of Figure 3's gap metric:
    /// "difference in carried demand divided by the sum of edge
    /// capacities").
    pub fn total_capacity(&self) -> f64 {
        self.edges.iter().map(|e| e.capacity).sum()
    }

    /// Largest single edge capacity.
    pub fn max_capacity(&self) -> f64 {
        self.edges.iter().map(|e| e.capacity).fold(0.0, f64::max)
    }

    /// A copy of this topology with every capacity multiplied by `factor`
    /// (how POP splits capacity across partitions).
    pub fn scale_capacities(&self, factor: f64) -> Topology {
        let mut t = self.clone();
        for e in &mut t.edges {
            e.capacity *= factor;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Topology::new("t");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let e1 = t.add_edge(a, b, 10.0).unwrap();
        let (e2, e3) = t.add_link(b, c, 5.0).unwrap();
        assert_eq!(t.n_nodes(), 3);
        assert_eq!(t.n_edges(), 3);
        assert_eq!(t.endpoints(e1), (a, b));
        assert_eq!(t.capacity(e2), 5.0);
        assert_eq!(t.endpoints(e3), (c, b));
        assert_eq!(t.total_capacity(), 20.0);
        assert_eq!(t.max_capacity(), 10.0);
        assert_eq!(t.out_edges(b).count(), 1);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut t = Topology::new("t");
        let a = t.add_node("a");
        let b = t.add_node("b");
        assert!(t.add_edge(a, a, 1.0).is_err());
        assert!(t.add_edge(a, b, -1.0).is_err());
        assert!(t.add_edge(a, b, f64::NAN).is_err());
        assert!(t.add_edge(a, NodeId(9), 1.0).is_err());
    }

    #[test]
    fn capacity_scaling() {
        let mut t = Topology::new("t");
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_edge(a, b, 8.0).unwrap();
        let half = t.scale_capacities(0.5);
        assert_eq!(half.capacity(EdgeId(0)), 4.0);
        assert_eq!(t.capacity(EdgeId(0)), 8.0);
    }
}
