//! Quickstart: the paper's Figure-2 rectangle example, then a first
//! adversarial gap search — a tour of the `metaopt` API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metaopt::core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt::milp::{solve, MilpConfig, MilpStatus};
use metaopt::model::{kkt, InnerProblem, LinExpr, Model, ObjSense, Sense};
use metaopt::te::TeInstance;
use metaopt::topology::synth::figure1_triangle;

fn main() {
    figure2_rectangle();
    first_gap_search();
}

/// Figure 2 of the paper: minimize the (squared) diameter of a rectangle
/// with perimeter at least P. The KKT theorem turns the optimization into a
/// feasibility problem whose unique solution is w = ℓ = λ = P/4 — solved
/// here by branch-and-bound over the complementarity pair, no objective at
/// all.
fn figure2_rectangle() {
    let p_val = 8.0;
    let mut m = Model::new();
    // P is an outer variable (a constant to the inner problem); pin it.
    let p = m.add_var("P", p_val, p_val).unwrap();

    let mut rect = InnerProblem::new("rect");
    let w = rect
        .add_var(&mut m, "w", f64::NEG_INFINITY, f64::INFINITY)
        .unwrap();
    let l = rect
        .add_var(&mut m, "l", f64::NEG_INFINITY, f64::INFINITY)
        .unwrap();
    // 2(w + ℓ) >= P   ⇔   P − 2w − 2ℓ <= 0
    rect.constrain(LinExpr::from(p) - 2.0 * w - 2.0 * l, Sense::Le)
        .unwrap();
    // minimize w² + ℓ²  (diagonal quadratic objective)
    rect.set_objective(ObjSense::Min, LinExpr::zero());
    rect.add_quadratic(w, 1.0);
    rect.add_quadratic(l, 1.0);

    let art = kkt::append_kkt(&mut m, &rect, 1e3).unwrap();
    let sol = solve(&m, &MilpConfig::default()).unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    println!("Figure 2 (KKT as feasibility): P = {p_val}");
    println!(
        "  w = {:.4}, ℓ = {:.4}, λ = {:.4}   (expected P/4 = {:.4} each)\n",
        sol.values[w.0],
        sol.values[l.0],
        sol.values[art.multipliers[0].0],
        p_val / 4.0
    );
}

/// Eq. 1 on the Figure-1 triangle: find the demands that maximize
/// OPT − DemandPinning. The finder proves the worst case is exactly
/// gap = 50 at demands (50, 100, 100).
fn first_gap_search() {
    let (topo, [n1, n2, n3]) = figure1_triangle(100.0);
    let inst = TeInstance::with_pairs(topo, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();

    let result = find_adversarial_gap(
        &inst,
        &HeuristicSpec::DemandPinning { threshold: 50.0 },
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap();

    println!("Adversarial gap search (Figure-1 triangle, DP threshold 50):");
    println!("  worst demands   = {:?}", result.demands);
    println!("  certified gap   = {:.4} flow units", result.verified_gap);
    println!("  proof status    = {:?}", result.status);
    println!("  problem size    = {}", result.stats);
}
