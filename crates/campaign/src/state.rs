//! Journal replay: folding the verified record stream back into per-cell
//! state. This is the *only* source of truth on resume — nothing about a
//! campaign lives outside its journal.
//!
//! Record vocabulary (the payload inside each `J1` envelope):
//!
//! ```text
//! campaign v1 <name> <n_cells>        header, always first
//! cell <idx> <spec…>                  cell declaration (idx < n_cells)
//! sched <idx> <attempt>               scheduler queued the cell
//! run <idx> <attempt>                 a worker picked it up
//! ckpt <idx> <sweep-state…>           durable tick boundary
//! done <idx> <outcome…>               cell completed (terminal)
//! fail <idx> <attempt> <kind> <detail> attempt failed; retry may follow
//! quarantine <idx> <reason> <attempts> gave up on the cell (terminal)
//! shutdown <reason>                   graceful drain finished
//! ```
//!
//! Replay is strict: unknown record kinds, out-of-range indices, records
//! for undeclared cells, and transitions on terminal cells are all
//! [`CampaignError::Corrupt`] — a journal that replays is a journal whose
//! every transition made sense in order.

use crate::cell::{decode_sweep_state, CellOutcome, CellSpec};
use crate::journal::read_journal;
use crate::{wire, CampaignError};
use metaopt_core::SweepState;
use metaopt_resilience::QuarantineReason;
use std::path::Path;

/// Journal format/version header tag.
pub const CAMPAIGN_MAGIC: &str = "campaign v1";

/// One recorded failure of a cell attempt (the fault history quarantined
/// cells carry for post-mortems and deterministic replay).
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Which attempt failed (1-based).
    pub attempt: usize,
    /// Fault kind (a [`metaopt_resilience::SolverFault`] kind, `panic`, or
    /// `timeout`).
    pub kind: String,
    /// Free-form detail.
    pub detail: String,
}

/// Replayed status of one cell.
#[derive(Debug, Clone)]
pub enum CellStatus {
    /// Not finished: run (or re-run) it, continuing from `resume` if set.
    Pending {
        /// Attempts already burnt (failed runs).
        attempt: usize,
        /// Last durable tick boundary, if any.
        resume: Option<SweepState>,
    },
    /// Completed with a certified outcome. Terminal: replayed `done` cells
    /// are never re-run (the zero-duplicated-work guarantee).
    Done(CellOutcome),
    /// Given up after repeated failures. Terminal.
    Quarantined {
        /// Why the supervisor gave up.
        reason: QuarantineReason,
        /// Attempts burnt before giving up.
        attempts: usize,
    },
}

impl CellStatus {
    /// Whether the cell needs no further work.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, CellStatus::Pending { .. })
    }
}

/// A campaign reconstructed from its journal.
#[derive(Debug)]
pub struct CampaignState {
    /// Campaign name (from the header record).
    pub name: String,
    /// Declared cells, by index.
    pub cells: Vec<CellSpec>,
    /// Replayed status per cell (same indexing).
    pub status: Vec<CellStatus>,
    /// Failure history per cell (survives retries and quarantine).
    pub failures: Vec<Vec<FailureRecord>>,
    /// Whether the journal ended in a torn record (hard-kill evidence).
    pub torn_tail: bool,
    /// `Some(reason)` when the last run drained gracefully.
    pub clean_shutdown: Option<String>,
}

impl CampaignState {
    /// Reads and replays a campaign directory's journal.
    pub fn from_dir(dir: &Path) -> Result<CampaignState, CampaignError> {
        let contents = read_journal(dir)?;
        CampaignState::replay(&contents.records, contents.torn_tail)
    }

    /// Folds verified journal records into campaign state.
    pub fn replay(records: &[String], torn_tail: bool) -> Result<CampaignState, CampaignError> {
        let corrupt = |msg: String| CampaignError::Corrupt(msg);
        let mut it = records.iter();
        let header = it
            .next()
            .ok_or_else(|| corrupt("empty journal (no campaign header)".into()))?;
        let header_rest = header
            .strip_prefix(CAMPAIGN_MAGIC)
            .and_then(|r| r.strip_prefix(' '))
            .ok_or_else(|| corrupt(format!("bad campaign header `{header}`")))?;
        let (name_tok, n_tok) = header_rest
            .split_once(' ')
            .ok_or_else(|| corrupt(format!("bad campaign header `{header}`")))?;
        let name = wire::unescape(name_tok).map_err(&corrupt)?;
        let n_cells: usize = wire::parse_usize(n_tok, "cell count").map_err(&corrupt)?;

        let mut cells: Vec<Option<CellSpec>> = vec![None; n_cells];
        let mut status: Vec<CellStatus> = (0..n_cells)
            .map(|_| CellStatus::Pending {
                attempt: 0,
                resume: None,
            })
            .collect();
        let mut failures: Vec<Vec<FailureRecord>> = vec![Vec::new(); n_cells];
        let mut clean_shutdown = None;

        for (rec_no, rec) in it.enumerate() {
            let (kind, rest) = rec.split_once(' ').unwrap_or((rec.as_str(), ""));
            let ctx = |why: String| corrupt(format!("record {} (`{kind}`): {why}", rec_no + 1));
            if kind == "shutdown" {
                clean_shutdown = Some(wire::unescape(rest).map_err(&ctx)?);
                continue;
            }
            // All other records start with a cell index.
            let (idx_tok, body) = rest.split_once(' ').unwrap_or((rest, ""));
            let idx = wire::parse_usize(idx_tok, "cell index").map_err(&ctx)?;
            if idx >= n_cells {
                return Err(ctx(format!("cell index {idx} out of range (n={n_cells})")));
            }
            if kind != "cell" && cells[idx].is_none() {
                return Err(ctx(format!("cell {idx} used before declaration")));
            }
            if kind != "cell" && status[idx].is_terminal() {
                return Err(ctx(format!("transition on terminal cell {idx}")));
            }
            match kind {
                "cell" => {
                    if cells[idx].is_some() {
                        return Err(ctx(format!("cell {idx} declared twice")));
                    }
                    cells[idx] = Some(CellSpec::decode(body).map_err(&ctx)?);
                }
                "sched" | "run" => {
                    // Informational; attempt bookkeeping rides on `fail`.
                    wire::parse_usize(body, "attempt").map_err(&ctx)?;
                }
                "ckpt" => {
                    let st = decode_sweep_state(body).map_err(&ctx)?;
                    if let CellStatus::Pending { resume, .. } = &mut status[idx] {
                        *resume = Some(st);
                    }
                }
                "done" => {
                    status[idx] = CellStatus::Done(CellOutcome::decode(body).map_err(&ctx)?);
                }
                "fail" => {
                    let mut tok = body.splitn(3, ' ');
                    let attempt = wire::parse_usize(tok.next().unwrap_or(""), "attempt")
                        .map_err(&ctx)?;
                    let fkind = tok
                        .next()
                        .ok_or_else(|| ctx("missing fault kind".into()))?
                        .to_string();
                    let detail =
                        wire::unescape(tok.next().unwrap_or("~")).map_err(&ctx)?;
                    failures[idx].push(FailureRecord {
                        attempt,
                        kind: fkind,
                        detail,
                    });
                    if let CellStatus::Pending { attempt: a, .. } = &mut status[idx] {
                        *a = attempt;
                    }
                }
                "quarantine" => {
                    let (reason_tok, attempts_tok) = body
                        .split_once(' ')
                        .ok_or_else(|| ctx("missing attempts".into()))?;
                    let reason = QuarantineReason::from_kind(reason_tok)
                        .ok_or_else(|| ctx(format!("unknown quarantine reason `{reason_tok}`")))?;
                    let attempts =
                        wire::parse_usize(attempts_tok, "attempts").map_err(&ctx)?;
                    status[idx] = CellStatus::Quarantined { reason, attempts };
                }
                other => return Err(ctx(format!("unknown record kind `{other}`"))),
            }
        }

        let cells = cells
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.ok_or_else(|| corrupt(format!("cell {i} never declared"))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CampaignState {
            name,
            cells,
            status,
            failures,
            torn_tail,
            clean_shutdown,
        })
    }

    /// `(done, quarantined, pending)` cell counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut done = 0;
        let mut quarantined = 0;
        let mut pending = 0;
        for s in &self.status {
            match s {
                CellStatus::Done(_) => done += 1,
                CellStatus::Quarantined { .. } => quarantined += 1,
                CellStatus::Pending { .. } => pending += 1,
            }
        }
        (done, quarantined, pending)
    }

    /// Indices of cells that still need work.
    pub fn pending_indices(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_terminal())
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the human-readable resumable manifest.
    pub fn manifest(&self) -> String {
        let (done, quarantined, pending) = self.counts();
        let mut out = String::new();
        out.push_str(&format!(
            "campaign {}\ncells {} done {done} quarantined {quarantined} pending {pending}\n",
            self.name,
            self.cells.len(),
        ));
        if let Some(reason) = &self.clean_shutdown {
            out.push_str(&format!("shutdown {reason}\n"));
        }
        if self.torn_tail {
            out.push_str("note journal ended in a torn record (hard kill); dropped\n");
        }
        for (i, (cell, st)) in self.cells.iter().zip(&self.status).enumerate() {
            match st {
                CellStatus::Done(o) => out.push_str(&format!(
                    "[{i}] {} done threshold={} gap={} probes={} nodes={}\n",
                    cell.label,
                    o.threshold.map_or("-".into(), |v| format!("{v}")),
                    o.verified_gap.map_or("-".into(), |v| format!("{v}")),
                    o.probes,
                    o.nodes,
                )),
                CellStatus::Quarantined { reason, attempts } => {
                    out.push_str(&format!(
                        "[{i}] {} QUARANTINED {reason} after {attempts} attempts\n",
                        cell.label
                    ));
                    for f in &self.failures[i] {
                        out.push_str(&format!(
                            "      attempt {} failed: {} {}\n",
                            f.attempt, f.kind, f.detail
                        ));
                    }
                }
                CellStatus::Pending { attempt, resume } => out.push_str(&format!(
                    "[{i}] {} pending attempt={attempt} checkpointed={}\n",
                    cell.label,
                    resume.is_some(),
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{encode_sweep_state, CellHeuristic, TopologySpec};

    fn spec(label: &str) -> CellSpec {
        CellSpec {
            label: label.into(),
            topology: TopologySpec::Fig1 { cap: 100.0 },
            paths_per_pair: 2,
            heuristic: CellHeuristic::Dp { threshold: 50.0 },
            lo: 0.0,
            hi: 100.0,
            resolution: 2.0,
            probe_cap_nodes: 4_000,
            slice_nodes: 16,
            timeout_secs: None,
            fault_seed: None,
            quantized: None,
        }
    }

    fn header(n: usize) -> String {
        format!("{CAMPAIGN_MAGIC} demo {n}")
    }

    #[test]
    fn replay_reconstructs_statuses() {
        let outcome = CellOutcome {
            threshold: Some(48.0),
            verified_gap: Some(50.0),
            demands: vec![50.0, 100.0, 100.0],
            probes: 6,
            nodes: 500,
        };
        let ckpt = encode_sweep_state(&spec("b").fresh_state().unwrap());
        let records = vec![
            header(3),
            format!("cell 0 {}", spec("a").encode()),
            format!("cell 1 {}", spec("b").encode()),
            format!("cell 2 {}", spec("c").encode()),
            "run 0 1".to_string(),
            format!("done 0 {}", outcome.encode()),
            // `sched` is the informational claim record; replay accepts it
            // wherever `run` is accepted and it must not disturb status.
            "sched 1 1".to_string(),
            "run 1 1".to_string(),
            format!("ckpt 1 {ckpt}"),
            "run 2 1".to_string(),
            format!("fail 2 1 callback_panic {}", wire::escape("boom at node 7")),
            "fail 2 2 timeout ~".to_string(),
            "quarantine 2 exhausted_retries 3".to_string(),
            format!("shutdown {}", wire::escape("operator drain")),
        ];
        let st = CampaignState::replay(&records, false).unwrap();
        assert_eq!(st.name, "demo");
        assert_eq!(st.clean_shutdown.as_deref(), Some("operator drain"));
        assert_eq!(st.counts(), (1, 1, 1));
        assert_eq!(st.pending_indices(), vec![1]);
        match &st.status[0] {
            CellStatus::Done(o) => assert_eq!(*o, outcome),
            other => panic!("{other:?}"),
        }
        match &st.status[1] {
            CellStatus::Pending { resume, .. } => assert!(resume.is_some()),
            other => panic!("{other:?}"),
        }
        match &st.status[2] {
            CellStatus::Quarantined { reason, attempts } => {
                assert_eq!(*reason, QuarantineReason::ExhaustedRetries);
                assert_eq!(*attempts, 3);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(st.failures[2].len(), 2);
        assert_eq!(st.failures[2][0].detail, "boom at node 7");
        let manifest = st.manifest();
        assert!(manifest.contains("QUARANTINED"), "{manifest}");
    }

    #[test]
    fn replay_rejects_inconsistent_journals() {
        let cases: Vec<Vec<String>> = vec![
            vec![],                                                  // empty
            vec!["not a header".into()],                             // bad magic
            vec![header(1)],                                         // cell never declared
            vec![header(1), "run 0 1".into()],                       // used before declared
            vec![header(1), format!("cell 0 {}", spec("a").encode()), "warp 0 1".into()],
            vec![header(1), format!("cell 0 {}", spec("a").encode()), "run 7 1".into()],
            vec![
                header(1),
                format!("cell 0 {}", spec("a").encode()),
                "quarantine 0 exhausted_retries 3".into(),
                "run 0 4".into(), // transition on terminal cell
            ],
        ];
        for records in cases {
            assert!(
                CampaignState::replay(&records, false).is_err(),
                "accepted {records:?}"
            );
        }
    }
}
