#!/usr/bin/env bash
# Crash-recovery drill: SIGKILL a running campaign mid-flight, resume it
# from the write-ahead journal in a fresh process, and assert the
# completed (cell, threshold, gap) result set is byte-identical to an
# uninterrupted run's. Exercises the same contract as
# `cargo test -p metaopt-campaign --test crash_recovery`, but end-to-end
# through the real binary and a real `kill -9`.
#
# usage: scripts/crash_drill.sh [path/to/campaign_drill]
set -euo pipefail

BIN="${1:-target/release/campaign_drill}"
if [[ ! -x "$BIN" ]]; then
    echo "drill binary not found: $BIN (build with \`cargo build --release -p metaopt-campaign\`)" >&2
    exit 1
fi
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Uninterrupted baseline. Slice size 1 keeps ticks (and journal writes)
# frequent, which widens the useful kill window.
SLICE=1
"$BIN" run "$WORK/baseline" "$SLICE" | grep '^RESULT' | sort > "$WORK/want.txt"
[[ -s "$WORK/want.txt" ]]

delay_ms=80
for attempt in $(seq 1 30); do
    dir="$WORK/kill-$attempt"
    "$BIN" run "$dir" "$SLICE" >/dev/null 2>&1 &
    pid=$!
    sleep "$(awk "BEGIN { print $delay_ms / 1000 }")"
    if ! kill -0 "$pid" 2>/dev/null; then
        # Finished before the kill landed: shorten the delay and retry.
        wait "$pid" || true
        delay_ms=$(( delay_ms * 2 / 3 ))
        (( delay_ms >= 5 )) || delay_ms=5
        continue
    fi
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true
    # A useful kill leaves pending work behind in a readable journal
    # (killing before the header is journaled makes `status` fail: retry).
    if "$BIN" status "$dir" 2>/dev/null | grep -q '^PENDING'; then
        "$BIN" resume "$dir" | grep '^RESULT' | sort > "$WORK/got.txt"
        diff -u "$WORK/want.txt" "$WORK/got.txt"
        echo "crash drill OK: post-SIGKILL resume matches uninterrupted run (attempt $attempt)"
        exit 0
    fi
    delay_ms=$(( delay_ms + 20 ))
done

echo "could not land a mid-run SIGKILL in 30 attempts" >&2
exit 1
