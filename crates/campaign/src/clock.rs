//! The approved time source for supervisory code — now hosted in
//! [`metaopt_obs::clock`], re-exported here unchanged.
//!
//! The `Clock` trait originally lived in this crate; it moved down to
//! `metaopt-obs` so the observability layer (a dependency of everything,
//! including `metaopt-lp`) can clock span durations from the same
//! injected source. Supervisory code keeps importing
//! `metaopt_campaign::{Clock, SystemClock, TestClock}` exactly as
//! before; the AN001 lint recognises `crates/obs/src/clock.rs` as the
//! one module allowed to read `Instant::now()` raw.

pub use metaopt_obs::clock::{Clock, SystemClock, TestClock};
