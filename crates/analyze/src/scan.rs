//! The token/AST-lite source scanner.
//!
//! No `syn`, no proc-macros — a single std-only pass that is exactly as
//! smart as the lints need it to be:
//!
//! * string/char literal contents are blanked (columns preserved) so the
//!   lints never match inside text,
//! * comments are stripped from the code view but *captured*, because
//!   two comment grammars are load-bearing: `an:allow(ANxxx): why`
//!   suppressions and `lock-order:` annotations,
//! * `#[cfg(test)]` items are marked so test code is exempt,
//! * `fn` item spans are recovered by brace matching so function-scoped
//!   checks (AN101, AN104) know their enclosing function.

/// One scanned line, in three load-bearing views.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with string/char contents blanked and comments stripped;
    /// columns line up with the original text.
    pub code: String,
    /// Code with comments stripped but string contents *kept* (the AN3xx
    /// vocabulary checks match journal kind strings here).
    pub text: String,
    /// Trimmed body of the `//` comment on this line, if any.
    pub comment: Option<String>,
    /// Inside a `#[cfg(test)]` item (test module or test fn).
    pub in_test: bool,
}

/// A `fn` item's extent, 1-based and inclusive.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub start: usize,
    /// Line of the matching closing brace.
    pub end: usize,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Crate directory name under `crates/` (empty for the root package).
    pub crate_name: String,
    /// Scanned lines (index 0 = line 1).
    pub lines: Vec<Line>,
    /// Every `fn` item, outermost first.
    pub functions: Vec<FnSpan>,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    Str,
    RawStr(usize),
    BlockComment,
}

impl SourceFile {
    /// Scans `text` (the contents of `rel`).
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let lines = scan_lines(text);
        let functions = find_functions(&lines);
        SourceFile {
            rel: rel.to_string(),
            crate_name,
            lines,
            functions,
        }
    }

    /// The innermost function containing 1-based `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| f.start <= line && line <= f.end)
            .min_by_key(|f| f.end - f.start)
    }

    /// 1-based numbers of non-test lines, paired with their code view.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.in_test)
            .map(|(i, l)| (i + 1, l.code.as_str()))
    }
}

/// Character-level scan: blanks literals, strips/captures comments.
fn scan_lines(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in text.lines() {
        let bytes: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut kept = String::with_capacity(raw.len());
        let mut comment: Option<String> = None;
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            match mode {
                Mode::BlockComment => {
                    if c == '*' && bytes.get(i + 1) == Some(&'/') {
                        mode = Mode::Code;
                        code.push_str("  ");
                        kept.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        kept.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => {
                    kept.push(c);
                    if c == '\\' {
                        code.push(' ');
                        if let Some(&e) = bytes.get(i + 1) {
                            code.push(' ');
                            kept.push(e);
                            i += 2;
                        } else {
                            i += 1;
                        }
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    kept.push(c);
                    if c == '"' && closes_raw(&bytes, i, hashes) {
                        code.push('"');
                        for k in 1..=hashes {
                            code.push('#');
                            kept.push(bytes[i + k]);
                        }
                        mode = Mode::Code;
                        i += 1 + hashes;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Code => {
                    if c == '/' && bytes.get(i + 1) == Some(&'/') {
                        // Doc comments (`///`, `//!`) are prose, not
                        // directives: they may *mention* the `an:allow`
                        // grammar without invoking it, so only plain `//`
                        // comments are captured for the comment grammars.
                        if bytes.get(i + 2) != Some(&'/') && bytes.get(i + 2) != Some(&'!') {
                            let body: String = bytes[i + 2..].iter().collect();
                            comment = Some(body.trim().to_string());
                        }
                        break;
                    }
                    if c == '/' && bytes.get(i + 1) == Some(&'*') {
                        mode = Mode::BlockComment;
                        code.push_str("  ");
                        kept.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        // A `"` in code mode opens a (possibly prefixed)
                        // plain string; `b"` was consumed as `b` + here.
                        mode = Mode::Str;
                        code.push('"');
                        kept.push('"');
                        i += 1;
                        continue;
                    }
                    if (c == 'r' || c == 'b') && !prev_is_ident(&bytes, i) {
                        if let Some(hashes) = raw_str_open(&bytes, i) {
                            // Consume the prefix up to and including `"`.
                            let mut j = i;
                            while bytes[j] != '"' {
                                code.push(bytes[j]);
                                kept.push(bytes[j]);
                                j += 1;
                            }
                            code.push('"');
                            kept.push('"');
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '\'' {
                        if let Some(len) = char_literal_len(&bytes, i) {
                            code.push('\'');
                            kept.push('\'');
                            for _ in 0..len.saturating_sub(2) {
                                code.push(' ');
                                kept.push(' ');
                            }
                            code.push('\'');
                            kept.push('\'');
                            i += len;
                            continue;
                        }
                    }
                    code.push(c);
                    kept.push(c);
                    i += 1;
                }
            }
        }
        out.push(Line {
            code,
            text: kept,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut out);
    out
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If position `i` (at `r` or `b`) opens a raw string (`r"`, `r#"`,
/// `br##"`, …), returns the number of `#`s.
fn raw_str_open(bytes: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&'"')).then_some(hashes)
}

/// Whether the `"` at `i` (inside a raw string with `hashes` `#`s) is
/// followed by enough `#`s to close it.
fn closes_raw(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Length (in chars, quotes included) of a char literal starting at the
/// `'` at position `i`, or `None` if this is a lifetime.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        '\\' => {
            // Escape: find the closing quote within a small window
            // (handles \n, \u{1F600}, \x7f).
            let window = &bytes[i + 3..(i + 12).min(bytes.len())];
            for (k, &c) in window.iter().enumerate() {
                if c == '\'' {
                    return Some(k + 4);
                }
            }
            None
        }
        _ => (bytes.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

/// Marks every line inside a `#[cfg(test)]` item. The attribute governs
/// the next item; the item's body is found by brace matching.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_close: Option<i64> = None;
    for line in lines.iter_mut() {
        if region_close.is_some() {
            line.in_test = true;
        }
        if line.code.contains("cfg(test") && line.code.trim_start().starts_with("#[") {
            pending_attr = true;
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_attr && region_close.is_none() {
                        region_close = Some(depth);
                        pending_attr = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_close == Some(depth) {
                        region_close = None;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Recovers `fn` item spans by brace matching over the code view.
fn find_functions(lines: &[Line]) -> Vec<FnSpan> {
    struct Open {
        name: String,
        start: usize,
        depth: i64,
    }
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // A `fn name` seen but whose `{` has not yet opened (or that turns
    // out to be a trait-method declaration ending in `;`).
    let mut pending: Option<(String, usize)> = None;
    let mut open: Vec<Open> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        let chars: Vec<char> = code.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '{' => {
                    if let Some((name, start)) = pending.take() {
                        open.push(Open {
                            name,
                            start,
                            depth,
                        });
                    }
                    depth += 1;
                    i += 1;
                }
                '}' => {
                    depth -= 1;
                    if open.last().is_some_and(|o| o.depth == depth) {
                        let o = open.pop().expect("checked non-empty");
                        out.push(FnSpan {
                            name: o.name,
                            start: o.start,
                            end: idx + 1,
                        });
                    }
                    i += 1;
                }
                ';' => {
                    // fn declaration without a body (trait method).
                    pending = None;
                    i += 1;
                }
                'f' if is_kw_fn(&chars, i) => {
                    let mut j = i + 2;
                    while j < chars.len() && chars[j].is_whitespace() {
                        j += 1;
                    }
                    let mut name = String::new();
                    while j < chars.len()
                        && (chars[j].is_alphanumeric() || chars[j] == '_')
                    {
                        name.push(chars[j]);
                        j += 1;
                    }
                    if !name.is_empty() {
                        pending = Some((name, idx + 1));
                    }
                    i = j;
                }
                _ => i += 1,
            }
        }
    }
    out.sort_by_key(|f| (f.start, f.end));
    out
}

/// Is `chars[i..]` the keyword `fn` (word-bounded)?
fn is_kw_fn(chars: &[char], i: usize) -> bool {
    chars.get(i) == Some(&'f')
        && chars.get(i + 1) == Some(&'n')
        && !prev_is_ident(chars, i)
        && chars
            .get(i + 2)
            .is_none_or(|c| c.is_whitespace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked_but_kept_in_text_view() {
        let f = SourceFile::parse("t.rs", "let x = \"Instant::now()\";\n");
        assert!(!f.lines[0].code.contains("Instant::now"));
        assert!(f.lines[0].text.contains("Instant::now"));
        assert_eq!(f.lines[0].code.len(), f.lines[0].text.len());
    }

    #[test]
    fn comments_are_captured_not_matched() {
        let f = SourceFile::parse("t.rs", "let y = 1; // Instant::now() here\n");
        assert!(!f.lines[0].code.contains("Instant"));
        assert_eq!(
            f.lines[0].comment.as_deref(),
            Some("Instant::now() here")
        );
    }

    #[test]
    fn raw_strings_and_chars_and_lifetimes() {
        let src = "let s = r#\"no \"HashMap<\" here\"#; let c = '\\n'; fn f<'a>(x: &'a str) {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("'a"));
    }

    #[test]
    fn test_modules_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn function_spans_nest() {
        let src = "fn outer() {\n    fn inner() {\n    }\n}\n";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.functions.len(), 2);
        let inner = f.enclosing_fn(3).unwrap();
        assert_eq!(inner.name, "inner");
        let outer = f.enclosing_fn(4).unwrap();
        assert_eq!(outer.name, "outer");
    }
}
