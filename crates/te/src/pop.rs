//! POP — Partitioned Optimization Problems (Eq. 6, Narayanan et al. 2021).
//!
//! POP "divides node pairs (and their demands) uniformly at random into a
//! number of partitions and solves the original problem in parallel, once
//! per partition, with edge capacities also uniformly divided across the
//! problems". The heuristic value is the vector-union of the per-partition
//! optima; its total flow is the sum of per-partition totals.
//!
//! Appendix A adds *client splitting*: demands at or above a threshold are
//! recursively halved (up to a per-client split budget) before
//! partitioning, letting a big demand straddle partitions.

use crate::instance::TeInstance;
use crate::opt::opt_max_flow;
use crate::TeResult;
use metaopt_topology::Demand;
use rand::seq::SliceRandom;
use rand::Rng;

/// A partition of pair indices into `n_parts` groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[k]` = partition index of pair `k`.
    pub assignment: Vec<usize>,
    /// Number of partitions.
    pub n_parts: usize,
}

impl Partition {
    /// The pair indices of partition `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        (0..self.assignment.len())
            .filter(|&k| self.assignment[k] == c)
            .collect()
    }
}

/// Draws a uniformly random balanced partition of `n_pairs` into `n_parts`
/// (the paper's "uniformly at random"; balanced assignment is the standard
/// POP implementation choice).
pub fn random_partition(n_pairs: usize, n_parts: usize, rng: &mut impl Rng) -> Partition {
    assert!(n_parts >= 1);
    let mut slots: Vec<usize> = (0..n_pairs).map(|i| i % n_parts).collect();
    slots.shuffle(rng);
    Partition {
        assignment: slots,
        n_parts,
    }
}

/// Draws `count` independent random partitions (the multi-instantiation
/// averaging of §3.2 / Figure 5a).
pub fn random_partitions(
    n_pairs: usize,
    n_parts: usize,
    count: usize,
    rng: &mut impl Rng,
) -> Vec<Partition> {
    (0..count)
        .map(|_| random_partition(n_pairs, n_parts, rng))
        .collect()
}

/// Result of one POP run.
#[derive(Debug, Clone)]
pub struct PopOutcome {
    /// Total carried flow summed over partitions.
    pub total_flow: f64,
    /// Per-partition totals.
    pub per_partition: Vec<f64>,
}

/// Runs POP for a fixed partition: solve `OptMaxFlow` per partition on a
/// copy of the network with capacities divided by `n_parts`.
pub fn pop_max_flow(
    inst: &TeInstance,
    demands: &[f64],
    partition: &Partition,
) -> TeResult<PopOutcome> {
    inst.check_demands(demands)?;
    assert_eq!(partition.assignment.len(), inst.n_pairs());
    let factor = 1.0 / partition.n_parts as f64;
    let mut per_partition = Vec::with_capacity(partition.n_parts);
    for c in 0..partition.n_parts {
        let members = partition.members(c);
        if members.is_empty() {
            per_partition.push(0.0);
            continue;
        }
        let sub = inst.restrict(&members, factor);
        let sub_dem: Vec<f64> = members.iter().map(|&k| demands[k]).collect();
        let out = opt_max_flow(&sub, &sub_dem)?;
        per_partition.push(out.total_flow);
    }
    Ok(PopOutcome {
        total_flow: per_partition.iter().sum(),
        per_partition,
    })
}

/// Average POP value over several partition instantiations — the
/// deterministic descriptor `E(Heuristic(I))` of §3.2.
pub fn pop_average(
    inst: &TeInstance,
    demands: &[f64],
    partitions: &[Partition],
) -> TeResult<f64> {
    let mut total = 0.0;
    for p in partitions {
        total += pop_max_flow(inst, demands, p)?.total_flow;
    }
    Ok(total / partitions.len().max(1) as f64)
}

/// Appendix-A client splitting: recursively halve any demand `>= d_th`, up
/// to `max_splits` splits per original client. Returns the virtual demand
/// list and, for bookkeeping, the original index of each virtual demand.
pub fn client_split(demands: &[Demand], d_th: f64, max_splits: usize) -> (Vec<Demand>, Vec<usize>) {
    let mut out = Vec::new();
    let mut origin = Vec::new();
    for (k, d) in demands.iter().enumerate() {
        let mut level = 0usize;
        let mut volume = d.volume;
        while level < max_splits && volume >= d_th {
            volume /= 2.0;
            level += 1;
        }
        let copies = 1usize << level;
        for _ in 0..copies {
            out.push(Demand::new(d.src, d.dst, volume));
            origin.push(k);
        }
    }
    (out, origin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::line;
    use metaopt_topology::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn partition_is_balanced_and_complete() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_partition(10, 3, &mut rng);
        let sizes: Vec<usize> = (0..3).map(|c| p.members(c).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
        // Every pair appears exactly once.
        let mut all: Vec<usize> = (0..3).flat_map(|c| p.members(c)).collect();
        all.sort();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn single_partition_equals_opt() {
        let inst = TeInstance::all_pairs(line(4, 10.0), 2).unwrap();
        let demands: Vec<f64> = (0..inst.n_pairs()).map(|k| (k % 4) as f64).collect();
        let part = Partition {
            assignment: vec![0; inst.n_pairs()],
            n_parts: 1,
        };
        let pop = pop_max_flow(&inst, &demands, &part).unwrap();
        let opt = crate::opt::opt_max_flow(&inst, &demands).unwrap();
        assert!((pop.total_flow - opt.total_flow).abs() < 1e-6);
    }

    #[test]
    fn pop_never_beats_opt() {
        let inst = TeInstance::all_pairs(line(4, 10.0), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let demands: Vec<f64> = (0..inst.n_pairs())
            .map(|_| rng.gen_range(0.0..12.0))
            .collect();
        let opt = crate::opt::opt_max_flow(&inst, &demands).unwrap();
        for n_parts in [2, 3] {
            for seed in 0..5 {
                let mut prng = StdRng::seed_from_u64(seed);
                let p = random_partition(inst.n_pairs(), n_parts, &mut prng);
                let pop = pop_max_flow(&inst, &demands, &p).unwrap();
                assert!(
                    pop.total_flow <= opt.total_flow + 1e-6,
                    "POP {} beat OPT {}",
                    pop.total_flow,
                    opt.total_flow
                );
            }
        }
    }

    #[test]
    fn average_over_instances() {
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let demands = vec![5.0; inst.n_pairs()];
        let mut rng = StdRng::seed_from_u64(11);
        let parts = random_partitions(inst.n_pairs(), 2, 4, &mut rng);
        let avg = pop_average(&inst, &demands, &parts).unwrap();
        let each: Vec<f64> = parts
            .iter()
            .map(|p| pop_max_flow(&inst, &demands, p).unwrap().total_flow)
            .collect();
        let expect = each.iter().sum::<f64>() / 4.0;
        assert!((avg - expect).abs() < 1e-9);
    }

    #[test]
    fn client_split_halves_until_below() {
        let d = vec![Demand::new(NodeId(0), NodeId(1), 100.0)];
        // Threshold 30, up to 2 splits: 100 → 50 → 25 (< 30, stop): 4 copies.
        let (split, origin) = client_split(&d, 30.0, 2);
        assert_eq!(split.len(), 4);
        assert!(split.iter().all(|s| (s.volume - 25.0).abs() < 1e-12));
        assert_eq!(origin, vec![0; 4]);
        // Volume conserved.
        let total: f64 = split.iter().map(|s| s.volume).sum();
        assert!((total - 100.0).abs() < 1e-12);
    }

    #[test]
    fn client_split_leaves_small_demands() {
        let d = vec![
            Demand::new(NodeId(0), NodeId(1), 10.0),
            Demand::new(NodeId(1), NodeId(0), 64.0),
        ];
        let (split, origin) = client_split(&d, 16.0, 3);
        // 10 untouched; 64 → 32 → 16 → 8 (3 splits) → 8 copies.
        assert_eq!(split.len(), 1 + 8);
        assert_eq!(origin.iter().filter(|&&o| o == 1).count(), 8);
        let total: f64 = split.iter().map(|s| s.volume).sum();
        assert!((total - 74.0).abs() < 1e-12);
    }

    /// Appendix A's motivation: splitting lets a large demand straddle
    /// partitions. One 10-unit demand on a 10-capacity link, 2 partitions:
    /// unsplit POP carries only 5 (one partition's half capacity); split
    /// into two 5-unit virtual clients, the balanced partition puts one in
    /// each half and POP carries the full 10.
    #[test]
    fn client_splitting_rescues_fragmented_capacity() {
        use metaopt_topology::synth::line;
        let topo = line(2, 10.0);
        let pair = (NodeId(0), NodeId(1));

        // Unsplit: one demand of 10.
        let inst = TeInstance::with_pairs(topo.clone(), vec![pair], 1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let part = random_partition(1, 2, &mut rng);
        let unsplit = pop_max_flow(&inst, &[10.0], &part).unwrap();
        assert!((unsplit.total_flow - 5.0).abs() < 1e-9, "{}", unsplit.total_flow);

        // Split once: two 5-unit virtual clients.
        let demands = vec![Demand::new(pair.0, pair.1, 10.0)];
        let (split, _) = client_split(&demands, 8.0, 1);
        assert_eq!(split.len(), 2);
        let pairs: Vec<_> = split.iter().map(|d| (d.src, d.dst)).collect();
        let sub = TeInstance::with_pairs(topo, pairs, 1).unwrap();
        let vols: Vec<f64> = split.iter().map(|d| d.volume).collect();
        // A balanced partition of 2 items into 2 parts always separates
        // them regardless of the shuffle.
        let mut rng = StdRng::seed_from_u64(2);
        let part = random_partition(2, 2, &mut rng);
        let with_split = pop_max_flow(&sub, &vols, &part).unwrap();
        assert!(
            (with_split.total_flow - 10.0).abs() < 1e-9,
            "{}",
            with_split.total_flow
        );
    }

    #[test]
    fn split_then_pop_conserves_feasibility() {
        // Splitting a demand lets POP carry it across partitions.
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let demands: Vec<Demand> = inst
            .pairs
            .iter()
            .map(|&(s, t)| Demand::new(s, t, 8.0))
            .collect();
        let (split, origin) = client_split(&demands, 4.0, 1);
        assert_eq!(split.len(), 2 * demands.len());
        // Rebuild an instance over the split pairs.
        let pairs: Vec<_> = split.iter().map(|d| (d.src, d.dst)).collect();
        let sub = TeInstance::with_pairs(inst.topo.clone(), pairs, 1).unwrap();
        let vols: Vec<f64> = split.iter().map(|d| d.volume).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let p = random_partition(sub.n_pairs(), 2, &mut rng);
        let pop = pop_max_flow(&sub, &vols, &p).unwrap();
        assert!(pop.total_flow > 0.0);
        let _ = origin;
    }
}
