//! Figure 5a — POP robustness to partition randomness on B4.
//!
//! Adversarial inputs found against a *single* random partition achieve a
//! large gap on that partition but a much smaller one on fresh random
//! partitions; optimizing the *average* over several instantiations (the
//! paper uses 5) yields inputs that are consistently bad.

use metaopt_bench::{budget_secs, f, quick_mode, CsvOut};
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_te::{
    opt::opt_max_flow,
    pop::{pop_max_flow, random_partitions},
    TeInstance,
};
use metaopt_topology::builtin;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_gaps(inst: &TeInstance, demands: &[f64], n_fresh: usize, seed: u64) -> Vec<f64> {
    let opt = opt_max_flow(inst, demands).unwrap().total_flow;
    let mut rng = StdRng::seed_from_u64(seed);
    random_partitions(inst.n_pairs(), 2, n_fresh, &mut rng)
        .iter()
        .map(|p| opt - pop_max_flow(inst, demands, p).unwrap().total_flow)
        .collect()
}

fn stats(v: &[f64]) -> (f64, f64, f64) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    let min = v.iter().copied().fold(f64::INFINITY, f64::min);
    let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

fn main() {
    let budget = budget_secs();
    let topo = if quick_mode() {
        builtin::swan(1000.0)
    } else {
        builtin::b4(1000.0)
    };
    let name = topo.name().to_string();
    let norm = topo.total_capacity();
    let inst = TeInstance::all_pairs(topo, 2).unwrap();
    let n_fresh = 10;
    println!(
        "Figure 5a: POP(2 partitions) on {name}, train 1 vs 5 instantiations, test on {n_fresh} fresh partitions, budget {budget}s"
    );
    let mut csv = CsvOut::new(
        "fig5a_pop_robustness",
        &["train_instances", "train_norm_gap", "test_mean", "test_min", "test_max"],
    );

    for &n_train in &[1usize, 5] {
        let mut rng = StdRng::seed_from_u64(100 + n_train as u64);
        let partitions = random_partitions(inst.n_pairs(), 2, n_train, &mut rng);
        let spec = HeuristicSpec::Pop {
            partitions,
            mode: PopMode::Average,
        };
        let r = find_adversarial_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(budget),
        )
        .unwrap();
        let fresh = test_gaps(&inst, &r.demands, n_fresh, 999);
        let (mean, min, max) = stats(&fresh);
        println!(
            "  trained on {n_train} instantiation(s): train gap {:.4}, fresh-partition gap mean {:.4} [min {:.4}, max {:.4}]",
            r.verified_gap / norm,
            mean / norm,
            min / norm,
            max / norm
        );
        csv.row([
            n_train.to_string(),
            f(r.verified_gap / norm),
            f(mean / norm),
            f(min / norm),
            f(max / norm),
        ]);
    }
    let path = csv.flush().unwrap();
    println!("\nseries written to {}", path.display());
}
