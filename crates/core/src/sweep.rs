//! The §3.3 binary-sweep search strategy.
//!
//! "For solvers which do not show progress (e.g., Z3), we iteratively ask
//! for any input with a gap that is at least as large as a specified value
//! and binary sweep the value with a fixed timeout."
//!
//! Each probe adds the constraint `OPT(d) − Heuristic(d) >= g` to the
//! single-shot model, runs a budgeted branch-and-bound that stops at the
//! *first* incumbent reaching `g` (feasibility, not optimization), and
//! *vets the witness* by re-running the real algorithms — a probe only
//! counts if the certified gap reaches the threshold.
//!
//! Two drivers share the probe:
//!
//! * [`sweep_max_gap`] — the one-call version (runs to completion),
//! * [`sweep_tick`] over a [`SweepState`] — the *resumable* version: each
//!   tick spends one [`SliceBudget`] of branch-and-bound work and returns
//!   either the finished result or a checkpointable state (the in-flight
//!   probe's frontier included). The campaign runner journals that state,
//!   which is how a SIGKILLed campaign continues mid-branch-and-bound
//!   instead of restarting.

use crate::constraints::ConstrainedSet;
use crate::finder::{build_adversarial_model, FinderConfig, HeuristicSpec};
use crate::{CoreError, CoreResult};
use metaopt_milp::{
    binary_sweep, solve_resumable, Checkpoint, MilpConfig, SweepMachine, SweepOutcome, CERT_TOL,
};
use metaopt_model::Sense;
use metaopt_te::{opt::opt_max_flow, TeInstance};
use std::time::Instant;

/// A vetted sweep witness.
#[derive(Debug, Clone)]
pub struct SweepWitness {
    /// The demands realizing the gap.
    pub demands: Vec<f64>,
    /// The certified gap (re-measured with the real algorithms).
    pub verified_gap: f64,
}

/// Result of [`sweep_max_gap`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The best witness found (None when even the lowest threshold failed).
    pub witness: Option<SweepWitness>,
    /// The highest threshold at which a witness was certified — `None`
    /// when no threshold in the range produced a witness (previously this
    /// reported the range's `lo` as if it had been certified).
    pub threshold: Option<f64>,
    /// Probe invocations spent.
    pub probes: usize,
}

/// Extracts the demand vector from a MILP solution and certifies it
/// against the real OPT and heuristic. Returns a witness only when the
/// certified gap reaches `g − CERT_TOL`.
fn vet_witness(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    am: &crate::finder::AdversarialModel,
    values: &[f64],
    g: f64,
) -> CoreResult<Option<SweepWitness>> {
    if values.is_empty() {
        return Ok(None);
    }
    let demands: Vec<f64> = am
        .d
        .iter()
        .map(|v| values[v.0].clamp(0.0, am.d_hi))
        .collect();
    let heu = match spec.evaluate(inst, &demands)? {
        Some(h) => h,
        None => return Ok(None),
    };
    let verified = opt_max_flow(inst, &demands)?.total_flow - heu;
    if verified + CERT_TOL >= g {
        Ok(Some(SweepWitness {
            demands,
            verified_gap: verified,
        }))
    } else {
        Ok(None)
    }
}

/// Builds the probe model: the adversarial program plus `gap >= g`, gated
/// by the static model checker when enabled.
fn build_probe_model(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
    g: f64,
    run_gate: bool,
) -> CoreResult<crate::finder::AdversarialModel> {
    let mut am = build_adversarial_model(inst, spec, constraints, cfg)?;
    // gap >= g as a model constraint.
    let mut gap_expr = am.opt_total.clone();
    gap_expr -= am.heu_value.clone();
    am.model
        .constrain_named("sweep::gap_floor", gap_expr, Sense::Ge, g)?;

    // Pre-solve static-analysis gate (debug Deny aborts here). A recorded
    // release-mode fault is dropped: every sweep witness is re-certified
    // against the real algorithms, so a suspect encoding can only cost
    // probes, never produce a false witness.
    if run_gate && cfg.modelcheck != crate::check::ModelCheckMode::Off {
        let report = crate::check::check_adversarial_model(inst, &am);
        let _ = crate::check::gate(&report, cfg.modelcheck)?;
    }
    Ok(am)
}

/// Probes whether any input achieves `gap >= g` within `probe_cfg`'s
/// budget. Returns a vetted witness or `None` (which, under a timeout, is
/// inconclusive — the sweep is a search strategy, not a proof).
pub fn find_gap_at_least(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
    g: f64,
) -> CoreResult<Option<SweepWitness>> {
    let am = build_probe_model(inst, spec, constraints, cfg, g, true)?;
    let milp_cfg = MilpConfig {
        target_objective: Some(g),
        ..cfg.milp_config()
    };
    // Reuse the finder's callback machinery through find_adversarial_gap's
    // building blocks: a plain solve is enough here because the incumbent
    // seeding happens through the callback; without it we still accept
    // branch-and-bound leaves.
    let sol = if cfg.use_incumbent_callback {
        let mut cb = crate::finder::new_candidate_evaluator(inst, spec, constraints, &am, cfg);
        metaopt_milp::solve_with_callback(&am.model, &milp_cfg, &mut cb)?
    } else {
        metaopt_milp::solve(&am.model, &milp_cfg)?
    };
    vet_witness(inst, spec, &am, &sol.values, g)
}

/// Binary-sweeps the largest certifiable gap in `[lo, hi]` to within
/// `resolution`, spending `cfg.milp`'s budget per probe.
pub fn sweep_max_gap(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
    lo: f64,
    hi: f64,
    resolution: f64,
) -> CoreResult<SweepResult> {
    validate_range(lo, hi, resolution)?;
    // The probe's typed errors pass through binary_sweep untouched, so a
    // caller can still match on e.g. `CoreError::ModelCheck`.
    let outcome = binary_sweep(lo, hi, resolution, |g| {
        find_gap_at_least(inst, spec, constraints, cfg, g)
    })?;
    Ok(match outcome {
        SweepOutcome::Found {
            threshold,
            witness,
            probes,
        } => SweepResult {
            witness: Some(witness),
            threshold: Some(threshold),
            probes,
        },
        SweepOutcome::NotFound { probes } => SweepResult {
            witness: None,
            threshold: None,
            probes,
        },
    })
}

fn validate_range(lo: f64, hi: f64, resolution: f64) -> CoreResult<()> {
    if lo.is_nan() || hi.is_nan() || lo > hi || resolution.is_nan() || resolution <= 0.0 {
        return Err(CoreError::Config(format!(
            "bad sweep range [{lo}, {hi}] / resolution {resolution}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Resumable sweep (checkpointable state, driven in slices)
// ---------------------------------------------------------------------

/// How much work one [`sweep_tick`] may spend before suspending.
#[derive(Debug, Clone, Copy)]
pub struct SliceBudget {
    /// Branch-and-bound nodes this tick may process (across the in-flight
    /// probe). Node-based slices keep resumed campaigns *deterministic*:
    /// wall-clock plays no part in where the search suspends.
    pub max_nodes: usize,
    /// Optional wall-clock cutoff for the tick (used by campaign cell
    /// timeouts and graceful drain; trades determinism for liveness).
    pub deadline: Option<Instant>,
}

impl SliceBudget {
    /// A purely node-driven slice.
    pub fn nodes(max_nodes: usize) -> Self {
        SliceBudget {
            max_nodes: max_nodes.max(1),
            deadline: None,
        }
    }
}

/// The in-flight probe of a suspended sweep: its threshold and the
/// branch-and-bound frontier to continue from.
#[derive(Debug, Clone)]
pub struct PendingProbe {
    /// The threshold being probed.
    pub g: f64,
    /// The interrupted search's frontier (serialize with
    /// [`Checkpoint::to_text`]).
    pub checkpoint: Checkpoint,
}

/// Checkpointable state of a resumable sweep: everything needed to
/// continue after the process is killed, given the same instance /
/// heuristic / constraints / config (cells rebuild those from their
/// serialized specs — model compilation is deterministic).
#[derive(Debug, Clone)]
pub struct SweepState {
    /// The bisection state machine (plain data, serializable field by
    /// field).
    pub machine: SweepMachine,
    /// Best certified witness so far.
    pub best_witness: Option<SweepWitness>,
    /// Cumulative branch-and-bound nodes spent across all probes. Strictly
    /// monotone across ticks; the crash-recovery tests use it to prove a
    /// resumed campaign did *not* redo finished work.
    pub nodes: usize,
    /// The interrupted probe, if the last tick suspended mid-search.
    pub pending: Option<PendingProbe>,
}

impl SweepState {
    /// A fresh sweep over `[lo, hi]` at `resolution`.
    pub fn new(lo: f64, hi: f64, resolution: f64) -> CoreResult<Self> {
        validate_range(lo, hi, resolution)?;
        Ok(SweepState {
            machine: SweepMachine::new(lo, hi, resolution),
            best_witness: None,
            nodes: 0,
            pending: None,
        })
    }

    /// Whether the sweep has converged (nothing left to probe).
    pub fn is_done(&self) -> bool {
        self.pending.is_none() && self.machine.is_done()
    }

    /// The finished result (meaningful once [`SweepState::is_done`]).
    pub fn result(&self) -> SweepResult {
        SweepResult {
            witness: self.best_witness.clone(),
            threshold: self.machine.best,
            probes: self.machine.probes,
        }
    }
}

/// Outcome of one [`sweep_tick`].
#[derive(Debug)]
pub enum SweepTick {
    /// The sweep converged; the carried state satisfies
    /// [`SweepState::is_done`] — read the answer with
    /// [`SweepState::result`]. Carrying the state (not just the result)
    /// preserves the cumulative node counter the campaign layer journals.
    Done(SweepState),
    /// The slice ran out with work left; checkpoint this state and call
    /// again (possibly in a different process).
    Paused(SweepState),
}

/// Advances a resumable sweep by at most one slice of branch-and-bound
/// work.
///
/// Each tick continues the pending probe's checkpointed frontier (or
/// starts the bisection's next probe), runs until the slice's node window
/// or deadline is exhausted, and either records the probe's verdict or
/// suspends again. Given identical inputs, the sequence of ticks is
/// deterministic — a run interrupted at any tick boundary and resumed
/// from its checkpoint produces the same final [`SweepResult`] as an
/// uninterrupted run (the property the campaign crash-recovery CI job
/// asserts).
///
/// `cfg.milp.max_nodes` acts as the *per-probe* node cap: a probe still
/// inconclusive after that many nodes is recorded as "no witness at this
/// threshold", mirroring the fixed-timeout semantics of the one-shot
/// sweep.
pub fn sweep_tick(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
    mut state: SweepState,
    slice: &SliceBudget,
) -> CoreResult<SweepTick> {
    // Resolve which probe this tick works on.
    let (g, resume) = match state.pending.take() {
        Some(p) => (p.g, Some(p.checkpoint)),
        None => match state.machine.next_threshold() {
            Some(g) => (g, None),
            None => return Ok(SweepTick::Done(state)),
        },
    };
    let fresh_probe = resume.is_none();
    let am = build_probe_model(inst, spec, constraints, cfg, g, fresh_probe)?;

    let probe_cap = cfg.milp.max_nodes;
    let start_nodes = resume.as_ref().map_or(0, Checkpoint::nodes_processed);
    let window_end = start_nodes
        .saturating_add(slice.max_nodes.max(1))
        .min(probe_cap);
    let mut milp_cfg = MilpConfig {
        target_objective: Some(g),
        max_nodes: window_end,
        ..cfg.milp_config()
    };
    if let Some(dl) = slice.deadline {
        milp_cfg.budget = milp_cfg.budget.min_with(metaopt_milp::Budget::until(dl));
    }

    let mut cb = crate::finder::new_candidate_evaluator(inst, spec, constraints, &am, cfg);
    let mut quiet = NoProposals;
    let callback: &mut dyn metaopt_milp::IncumbentCallback = if cfg.use_incumbent_callback {
        &mut cb
    } else {
        &mut quiet
    };
    let (sol, checkpoint) = solve_resumable(&am.model, &milp_cfg, callback, resume)?;
    state.nodes += sol.nodes.saturating_sub(start_nodes);

    // A certified witness at this threshold settles the probe regardless
    // of the frontier state.
    if let Some(w) = vet_witness(inst, spec, &am, &sol.values, g)? {
        state.best_witness = Some(w);
        state.machine.record(g, true);
        return Ok(tick_outcome(state));
    }
    match checkpoint {
        // Open frontier, per-probe cap not yet exhausted, and the slice
        // made forward progress: suspend mid-probe. (The progress guard
        // prevents a livelock when an expired outer budget stops the
        // search before a single node runs.)
        Some(cp) if sol.nodes < probe_cap && sol.nodes > start_nodes => {
            state.pending = Some(PendingProbe { g, checkpoint: cp });
            Ok(SweepTick::Paused(state))
        }
        // Cap exhausted (inconclusive — counts as "not found", the sweep
        // is a search strategy, not a proof) or the tree is exhausted /
        // infeasible at this threshold.
        _ => {
            state.machine.record(g, false);
            Ok(tick_outcome(state))
        }
    }
}

fn tick_outcome(state: SweepState) -> SweepTick {
    if state.is_done() {
        SweepTick::Done(state)
    } else {
        SweepTick::Paused(state)
    }
}

/// Callback that never proposes (for `use_incumbent_callback: false`).
struct NoProposals;

impl metaopt_milp::IncumbentCallback for NoProposals {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_topology::synth::figure1_triangle;

    fn fig1() -> TeInstance {
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
    }

    #[test]
    fn probe_accepts_achievable_threshold() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let w = find_gap_at_least(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(10.0),
            30.0,
        )
        .unwrap();
        let w = w.expect("gap 30 is achievable (max is 50)");
        assert!(w.verified_gap >= 30.0 - CERT_TOL);
    }

    #[test]
    fn probe_rejects_impossible_threshold() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        // The provable maximum is 50; 80 must be infeasible.
        let w = find_gap_at_least(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(10.0),
            80.0,
        )
        .unwrap();
        assert!(w.is_none());
    }

    #[test]
    fn sweep_converges_to_the_optimum() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let r = sweep_max_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(5.0),
            0.0,
            100.0,
            1.0,
        )
        .unwrap();
        let w = r.witness.expect("some gap must be found");
        let threshold = r.threshold.expect("a certified threshold must exist");
        // The sweep should get within its resolution of the true optimum 50.
        assert!(
            (45.0..=50.0 + CERT_TOL).contains(&threshold),
            "threshold {} (probes {})",
            threshold,
            r.probes
        );
        assert!(w.verified_gap >= threshold - CERT_TOL);
    }

    #[test]
    fn infeasible_sweep_reports_no_threshold() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        // The whole range sits above the provable maximum of 50.
        let r = sweep_max_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(5.0),
            80.0,
            100.0,
            1.0,
        )
        .unwrap();
        assert!(r.threshold.is_none(), "threshold {:?}", r.threshold);
        assert!(r.witness.is_none());
        assert_eq!(r.probes, 1);
    }

    /// Ticked execution with tiny slices reaches the same certified
    /// threshold as the one-call sweep.
    #[test]
    fn ticked_sweep_matches_one_call_sweep() {
        let inst = fig1();
        let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
        let cs = ConstrainedSet::unconstrained();
        let cfg = FinderConfig {
            milp: MilpConfig {
                max_nodes: 4_000,
                ..MilpConfig::default()
            },
            ..FinderConfig::default()
        };
        let direct = sweep_max_gap(&inst, &spec, &cs, &cfg, 0.0, 100.0, 2.0).unwrap();

        let mut state = SweepState::new(0.0, 100.0, 2.0).unwrap();
        let slice = SliceBudget::nodes(7);
        let mut ticks = 0usize;
        let result = loop {
            ticks += 1;
            assert!(ticks < 10_000, "ticked sweep failed to converge");
            match sweep_tick(&inst, &spec, &cs, &cfg, state, &slice).unwrap() {
                SweepTick::Done(s) => break s.result(),
                SweepTick::Paused(s) => state = s,
            }
        };
        assert_eq!(result.threshold, direct.threshold);
        assert_eq!(result.probes, direct.probes);
        assert!(ticks > 1, "slices of 7 nodes must suspend at least once");
    }
}
