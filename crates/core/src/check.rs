//! The pre-solve static-analysis gate.
//!
//! Every single-shot program the finder assembles is walked by
//! `metaopt-modelcheck` *before* branch-and-bound sees it: a silently
//! flipped dual sign or a dangling complementarity pair produces a "gap"
//! that is an encoding bug, not a heuristic failure. The gate is
//! deny-by-default ([`ModelCheckMode::Deny`]): error-severity diagnostics
//! abort the solve in debug builds, and are downgraded to a recorded
//! [`SolverFault::EncodingSuspect`] in release builds so production runs
//! stay anytime.

use crate::constraints::ConstrainedSet;
use crate::finder::{build_adversarial_model, AdversarialModel, FinderConfig, HeuristicSpec};
use crate::{CoreError, CoreResult};
use metaopt_model::ModelStats;
use metaopt_modelcheck::{check_model, CheckConfig, Report, TopologyContext};
use metaopt_resilience::SolverFault;
use metaopt_te::TeInstance;

/// How the static model checker gates solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelCheckMode {
    /// Run the checker; error diagnostics abort before the solve in debug
    /// builds and are recorded as [`SolverFault::EncodingSuspect`] in
    /// release builds. The default.
    #[default]
    Deny,
    /// Run the checker; error diagnostics are always recorded as faults,
    /// never abort.
    Warn,
    /// Skip the checker entirely.
    Off,
}

/// The topology shape of `inst`, in the checker's encoder-independent form.
pub fn topology_context(inst: &TeInstance) -> TopologyContext {
    TopologyContext {
        n_pairs: inst.n_pairs(),
        n_edges: inst.topo.n_edges(),
        paths: inst
            .paths
            .iter()
            .map(|ps| {
                ps.iter()
                    .map(|p| p.edges.iter().map(|e| e.0).collect())
                    .collect()
            })
            .collect(),
    }
}

/// Runs the full analyzer over an assembled single-shot model.
///
/// The `opt` and `dp` flow encodings live on the instance's own topology
/// and get the MC3xx TE-semantic checks; POP sub-encodings (`pop[r][c]`
/// prefixes) are built over *partition-restricted* sub-instances internal
/// to the encoder and are deliberately not registered (structural, KKT,
/// and numerical families still cover them).
pub fn check_adversarial_model(inst: &TeInstance, am: &AdversarialModel) -> Report {
    let ctx = topology_context(inst);
    let cfg = CheckConfig::default()
        .with_semantic("opt", ctx.clone())
        .with_semantic("dp", ctx);
    check_model(&am.model, &cfg)
}

/// Admission-time validation for externally submitted job specs: builds
/// the full adversarial model once and runs the complete static analyzer
/// over it, erroring on *any* error-severity diagnostic — in every build
/// profile, regardless of [`ModelCheckMode`].
///
/// This deliberately differs from the in-solve [`gate`]: mid-solve, a
/// release build downgrades encoding suspicion to a recorded fault so
/// long-running campaigns stay anytime; at a server's admission boundary
/// there is nothing to stay anytime *for* — the right move is to reject
/// the job with a diagnostic before it ever occupies a worker. Returns the
/// single-shot program's size statistics (the paper's Figure 6 axes) so
/// admission can also refuse jobs that are structurally too large.
pub fn validate_adversarial_setup(
    inst: &TeInstance,
    spec: &HeuristicSpec,
    constraints: &ConstrainedSet,
    cfg: &FinderConfig,
) -> CoreResult<ModelStats> {
    let am = build_adversarial_model(inst, spec, constraints, cfg)?;
    let report = check_adversarial_model(inst, &am);
    if report.has_errors() {
        let details: Vec<String> = report.errors().take(8).map(ToString::to_string).collect();
        return Err(CoreError::ModelCheck(format!(
            "{}\n{}",
            report.summary(),
            details.join("\n")
        )));
    }
    Ok(am.stats())
}

/// Applies the gate policy to a report. Returns a fault to record in
/// `GapResult::faults` (release/Warn path), `Err` to abort (debug Deny
/// path), or `Ok(None)` when the model is acceptable.
pub(crate) fn gate(report: &Report, mode: ModelCheckMode) -> CoreResult<Option<SolverFault>> {
    if mode == ModelCheckMode::Off || !report.has_errors() {
        return Ok(None);
    }
    if mode == ModelCheckMode::Deny && cfg!(debug_assertions) {
        let details: Vec<String> = report.errors().take(8).map(ToString::to_string).collect();
        return Err(CoreError::ModelCheck(format!(
            "{}\n{}",
            report.summary(),
            details.join("\n")
        )));
    }
    Ok(Some(SolverFault::EncodingSuspect(report.summary())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_modelcheck::{Severity, Span};

    fn erring() -> Report {
        let mut r = Report::new();
        r.push("MC102", Severity::Error, Span::Model, "flipped sign".into());
        r
    }

    #[test]
    fn off_mode_never_gates() {
        assert_eq!(gate(&erring(), ModelCheckMode::Off).unwrap(), None);
    }

    #[test]
    fn warn_mode_records_fault() {
        let f = gate(&erring(), ModelCheckMode::Warn).unwrap().unwrap();
        assert_eq!(f.kind(), "encoding_suspect");
        assert!(!f.is_recoverable());
    }

    #[test]
    fn deny_mode_policy_matches_build_profile() {
        let out = gate(&erring(), ModelCheckMode::Deny);
        if cfg!(debug_assertions) {
            assert!(matches!(out, Err(CoreError::ModelCheck(_))));
        } else {
            assert!(matches!(out, Ok(Some(_))));
        }
    }

    #[test]
    fn clean_report_passes_all_modes() {
        for mode in [ModelCheckMode::Deny, ModelCheckMode::Warn, ModelCheckMode::Off] {
            assert_eq!(gate(&Report::new(), mode).unwrap(), None);
        }
    }

    #[test]
    fn validate_accepts_well_formed_setup_and_reports_stats() {
        use metaopt_te::TeInstance;
        use metaopt_topology::synth::figure1_triangle;
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        let inst = TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
        let stats = validate_adversarial_setup(
            &inst,
            &crate::HeuristicSpec::DemandPinning { threshold: 50.0 },
            &crate::ConstrainedSet::unconstrained(),
            &crate::FinderConfig::default(),
        )
        .unwrap();
        assert!(stats.n_vars > 0 && stats.n_linear > 0);
    }

    #[test]
    fn validate_rejects_malformed_setup_in_every_profile() {
        use metaopt_te::TeInstance;
        use metaopt_topology::synth::figure1_triangle;
        let (t, [n1, n2, n3]) = figure1_triangle(100.0);
        let inst = TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
        let mut cs = crate::ConstrainedSet::unconstrained();
        cs.d_max = Some(-1.0); // malformed: negative demand bound
        let err = validate_adversarial_setup(
            &inst,
            &crate::HeuristicSpec::DemandPinning { threshold: 50.0 },
            &cs,
            &crate::FinderConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Config(_) | CoreError::ModelCheck(_)
        ));
    }
}
