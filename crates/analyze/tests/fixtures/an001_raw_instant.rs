//@ rel: crates/campaign/src/runner.rs
//@ expect: AN001 6:14
use std::time::Instant;

fn queue_age() -> Instant {
    let t0 = Instant::now();
    t0
}
