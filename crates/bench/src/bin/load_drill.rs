//! `load_drill` — an in-process overload drill against the gap-finding
//! job server: pins the worker pool, fires a burst of submissions at a
//! deliberately small admission queue, and reports the shedding behaviour
//! as one JSON document on stdout.
//!
//! ```text
//! load_drill [--chaos] [burst] [max_queue]        (defaults: 120 8)
//! ```
//!
//! Exit code 0 when the overload contract held: the queue never exceeded
//! its bound, every rejection carried `429 Retry-After`, and every
//! acknowledged job reached a certified terminal result. Nonzero
//! otherwise — so CI can run this as a drill, not just a benchmark.
//!
//! `--chaos` turns on process chaos: jobs execute in sandboxed worker
//! children (self-exec of this binary in `--worker` mode) and the drill
//! SIGKILLs live workers while the backlog drains. The contract is
//! unchanged — every acknowledged job must still reach a certified
//! result, because a killed worker is a retryable `worker_exit` fault,
//! not a loss.

use metaopt_campaign::{SandboxConfig, SandboxLimits};
use metaopt_obs::trace::DEFAULT_RING_CAPACITY;
use metaopt_obs::{SystemClock, Tracer};
use metaopt_server::client::request;
use metaopt_server::{serve, GapServer, Json, ServerConfig};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tiny_job(label: &str, client: &str) -> Vec<u8> {
    format!(
        concat!(
            "{{\"client\":\"{}\",\"label\":\"{}\",",
            "\"topology\":{{\"kind\":\"fig1\",\"cap\":100.0}},",
            "\"heuristic\":{{\"kind\":\"dp\",\"threshold\":50.0}},",
            "\"sweep\":{{\"lo\":45.0,\"hi\":55.0,\"resolution\":10.0}},",
            "\"budget\":{{\"probe_cap_nodes\":4000,\"slice_nodes\":64}}}}"
        ),
        client, label
    )
    .into_bytes()
}

/// Chaos-mode burst job: real branch-and-bound work (~1s per job) so the
/// backlog drains slowly enough for the killer to catch workers mid-cell
/// — the fig1 cells above finish in milliseconds, which starves the
/// chaos of victims.
fn chaos_job(label: &str, client: &str) -> Vec<u8> {
    format!(
        concat!(
            "{{\"client\":\"{}\",\"label\":\"{}\",",
            "\"topology\":{{\"kind\":\"builtin\",\"name\":\"abilene\",\"cap\":100.0}},",
            "\"heuristic\":{{\"kind\":\"dp\",\"threshold\":50.0}},",
            "\"sweep\":{{\"lo\":0.0,\"hi\":100.0,\"resolution\":4.0}},",
            "\"budget\":{{\"probe_cap_nodes\":50000,\"slice_nodes\":8}}}}"
        ),
        client, label
    )
    .into_bytes()
}

/// Live children of this process running in `--worker` mode, via
/// `/proc` (ppid is field 2 after the parenthesised comm in `stat`).
fn worker_children() -> Vec<u32> {
    let me = std::process::id();
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return out;
    };
    for entry in entries.flatten() {
        let Some(pid) = entry
            .file_name()
            .to_str()
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
            continue;
        };
        let ppid = stat
            .rsplit_once(')')
            .map(|(_, rest)| rest)
            .and_then(|rest| rest.split_whitespace().nth(1)?.parse::<u32>().ok());
        if ppid != Some(me) {
            continue;
        }
        let cmdline = std::fs::read_to_string(format!("/proc/{pid}/cmdline")).unwrap_or_default();
        if cmdline.split('\0').any(|a| a == "--worker") {
            out.push(pid);
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    // Hidden dispatch: `--worker` runs this binary as the sandboxed
    // cell worker, exactly like `gapserver --worker`.
    if args.get(1).is_some_and(|a| a == "--worker") {
        return ExitCode::from(metaopt_campaign::worker_main().clamp(0, 255) as u8);
    }
    // Structured diagnostics; stderr stays byte-identical to the old
    // plain `eprintln!` lines.
    let tracer = Tracer::new(Arc::new(SystemClock), DEFAULT_RING_CAPACITY);
    tracer.install_panic_dump();
    let chaos = args.iter().any(|a| a == "--chaos");
    let positional: Vec<&String> = args[1..].iter().filter(|a| !a.starts_with("--")).collect();
    let burst: usize = positional.first().and_then(|s| s.parse().ok()).unwrap_or(120);
    let max_queue: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let sandbox = if chaos {
        let program = match std::env::current_exe() {
            Ok(p) => p,
            Err(e) => {
                tracer.log_stderr(
                    "load_drill.no_self_exe",
                    &format!("load_drill: cannot self-exec for --chaos: {e}"),
                );
                return ExitCode::FAILURE;
            }
        };
        Some(SandboxConfig {
            program,
            args: vec!["--worker".into()],
            limits: SandboxLimits::default(),
        })
    } else {
        None
    };

    let dir = std::env::temp_dir().join(format!("metaopt-load-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = match GapServer::open(ServerConfig {
        name: "load-drill".into(),
        dir: dir.clone(),
        workers: 1,
        max_queue,
        quota_burst: burst as f64 * 2.0,
        quota_per_sec: burst as f64,
        sandbox,
        ..ServerConfig::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            tracer.log_stderr("load_drill.open_failed", &format!("load_drill: open: {e}"));
            return ExitCode::FAILURE;
        }
    };
    server.start_workers();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serve_server = Arc::clone(&server);
    // an:allow(AN104): drill binary, not a supervised worker — a panic in
    // the acceptor aborts the whole drill loudly, which is the right
    // outcome for a benchmark; there are no slots or supervisors to wedge.
    let serve_thread = std::thread::spawn(move || serve(&serve_server, listener));

    let call = |method: &str, path: &str, body: Option<&[u8]>| {
        request(&addr, method, path, body, Duration::from_secs(120)).expect("drill request")
    };

    // Pin the single worker with a long job so the burst meets a queue
    // that only fills, never drains.
    let long = concat!(
        "{\"client\":\"pin\",\"label\":\"pin\",",
        "\"topology\":{\"kind\":\"builtin\",\"name\":\"abilene\",\"cap\":100.0},",
        "\"heuristic\":{\"kind\":\"dp\",\"threshold\":50.0},",
        "\"sweep\":{\"lo\":0.0,\"hi\":100.0,\"resolution\":0.25},",
        "\"budget\":{\"probe_cap_nodes\":2000000,\"slice_nodes\":8}}"
    );
    let resp = call("POST", "/jobs", Some(long.as_bytes()));
    assert_eq!(resp.status, 202, "pin job refused: {}", resp.text());
    let pin_id = Json::parse(&resp.text())
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();

    let burst_start = Instant::now();
    let mut accepted: Vec<u64> = Vec::new();
    let mut shed = 0usize;
    let mut shed_without_retry_after = 0usize;
    let mut max_depth_seen = 0u64;
    let mut ok = true;
    for i in 0..burst {
        let body = if chaos {
            chaos_job(&format!("burst-{i}"), &format!("tenant-{}", i % 7))
        } else {
            tiny_job(&format!("burst-{i}"), &format!("tenant-{}", i % 7))
        };
        let resp = call("POST", "/jobs", Some(&body));
        match resp.status {
            202 => {
                let id = Json::parse(&resp.text())
                    .unwrap()
                    .get("id")
                    .and_then(Json::as_u64)
                    .unwrap();
                accepted.push(id);
            }
            429 => {
                shed += 1;
                if resp.header("retry-after").is_none() {
                    shed_without_retry_after += 1;
                    ok = false;
                }
            }
            other => {
                tracer.log_stderr(
                    "load_drill.unexpected_status",
                    &format!("load_drill: unexpected status {other}: {}", resp.text()),
                );
                ok = false;
            }
        }
        let health = Json::parse(&call("GET", "/healthz", None).text()).unwrap();
        let depth = health.get("queue_depth").and_then(Json::as_u64).unwrap_or(0);
        max_depth_seen = max_depth_seen.max(depth);
        if depth > max_queue as u64 {
            ok = false;
        }
    }
    let burst_secs = burst_start.elapsed().as_secs_f64();

    // Release the worker and confirm no acknowledged job was dropped.
    call("DELETE", &format!("/jobs/{pin_id}"), None);

    // Process chaos: SIGKILL live worker children while the backlog
    // drains. Two kills maximum — the default retry policy allows three
    // attempts, so no single job can be chased into quarantine by the
    // killer alone, which keeps the pass criterion exact.
    let killer_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let killer = chaos.then(|| {
        let stop = Arc::clone(&killer_stop);
        std::thread::spawn(move || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut kills = 0usize;
                while kills < 2 && !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    if let Some(&pid) = worker_children().first() {
                        // an:allow(AN106): the chaos *killer*, not a
                        // worker — it spawns /bin/kill to deliver the
                        // SIGKILL the drill is about; nothing here needs
                        // supervision.
                        let delivered = std::process::Command::new("kill")
                            .args(["-9", &pid.to_string()])
                            .status()
                            .is_ok_and(|s| s.success());
                        if delivered {
                            kills += 1;
                            std::thread::sleep(Duration::from_millis(400));
                        }
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                kills
            }))
            .unwrap_or(0)
        })
    });

    let settle_start = Instant::now();
    let deadline = settle_start + Duration::from_secs(300);
    let mut completed = 0usize;
    for id in &accepted {
        loop {
            let job = Json::parse(&call("GET", &format!("/jobs/{id}"), None).text()).unwrap();
            match job.get("status").and_then(Json::as_str).unwrap_or("?") {
                "done" => {
                    completed += 1;
                    break;
                }
                "quarantined" | "cancelled" => {
                    ok = false;
                    break;
                }
                _ if Instant::now() >= deadline => {
                    ok = false;
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
    let settle_secs = settle_start.elapsed().as_secs_f64();
    killer_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let workers_killed = killer.map_or(0, |k| k.join().unwrap_or(0));
    if chaos && workers_killed == 0 {
        // Chaos that never fired proves nothing; fail the drill loudly.
        tracer.log_stderr(
            "load_drill.chaos_idle",
            "load_drill: --chaos requested but no worker child was ever killed",
        );
        ok = false;
    }

    call("POST", "/admin/drain", None);
    let _ = serve_thread.join();
    let _ = std::fs::remove_dir_all(&dir);

    let contract_held =
        ok && shed + accepted.len() == burst && completed == accepted.len() && shed > 0;
    let summary = Json::obj(vec![
        ("burst", Json::Num(burst as f64)),
        ("max_queue", Json::Num(max_queue as f64)),
        ("accepted", Json::Num(accepted.len() as f64)),
        ("shed_429", Json::Num(shed as f64)),
        (
            "shed_missing_retry_after",
            Json::Num(shed_without_retry_after as f64),
        ),
        ("max_queue_depth_seen", Json::Num(max_depth_seen as f64)),
        ("accepted_completed", Json::Num(completed as f64)),
        ("burst_secs", Json::Num(burst_secs)),
        ("settle_secs", Json::Num(settle_secs)),
        ("chaos", Json::Bool(chaos)),
        ("workers_killed", Json::Num(workers_killed as f64)),
        ("contract_held", Json::Bool(contract_held)),
    ]);
    println!("{}", summary.render());
    if contract_held {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
