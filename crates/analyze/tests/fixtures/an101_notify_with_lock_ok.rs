//@ rel: crates/milp/src/parallel.rs
use std::sync::{Condvar, Mutex};

fn publish(m: &Mutex<u64>, cv: &Condvar) {
    let mut g = m.lock().unwrap();
    *g += 1;
    drop(g);
    cv.notify_all();
}
