//@ rel: crates/campaign/src/sandbox.rs
use std::process::Command;

fn build_supervised_worker() {
    let mut cmd = Command::new("gapserver");
    cmd.arg("--worker");
    let _ = cmd;
}
