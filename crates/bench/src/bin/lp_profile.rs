use metaopt_core::finder::build_adversarial_model;
use metaopt_core::{ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt_model::compile::compile;
use metaopt_lp::Simplex;
use metaopt_te::TeInstance;
use metaopt_topology::builtin;
use std::time::Instant;

fn main() {
    let inst = TeInstance::all_pairs(builtin::b4(1000.0), 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let am = build_adversarial_model(&inst, &spec, &ConstrainedSet::unconstrained(), &FinderConfig::default()).unwrap();
    let cm = compile(&am.model).unwrap();
    println!("lp: {} vars {} rows {} nnz", cm.lp.n_vars(), cm.lp.n_rows(), cm.lp.nnz());
    let t = Instant::now();
    let mut sx = Simplex::new(&cm.lp);
    let sol = sx.solve().unwrap();
    println!("root solve: {:?} iters={} status={:?} obj={}", t.elapsed(), sol.iterations, sol.status, sol.objective);
}
