//! MC3xx — TE-domain semantic checks.
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | MC301 | error    | demand row touches foreign-commodity flow variables, or misses one of its own paths |
//! | MC302 | error    | an edge with path users has no capacity row |
//! | MC303 | error    | capacity row incidence mismatch (flow variable off the edge, or a user missing) |
//! | MC304 | error    | flow variable indexes outside the topology shape |
//!
//! The checks are keyed by the encoder naming convention
//! `{prefix}::f[{k}][{p}]` / `{prefix}::dem[{k}]` / `{prefix}::cap[{e}]`
//! (demand/capacity rows may be nested inside a KKT `pf[..]` wrapper). Only
//! prefixes registered in [`crate::CheckConfig::semantic`] are examined, so
//! inner problems over private sub-topologies (POP partitions) are skipped
//! rather than misjudged.

use crate::names;
use crate::{Report, Severity, Span};
use metaopt_model::{Model, VarRef};
use std::collections::{HashMap, HashSet};

/// The topology shape a TE encoding must respect: how many commodities and
/// edges exist, and which edges each path traverses. Built by callers from
/// their `TeInstance` (this crate stays independent of `metaopt-te`).
#[derive(Debug, Clone, Default)]
pub struct TopologyContext {
    /// Number of source–destination pairs (commodities).
    pub n_pairs: usize,
    /// Number of directed edges.
    pub n_edges: usize,
    /// `paths[k][p]` lists the edge ids path `p` of commodity `k` uses.
    pub paths: Vec<Vec<Vec<usize>>>,
}

impl TopologyContext {
    /// Per-edge users: which `(pair, path)` combinations cross each edge.
    fn edge_users(&self) -> Vec<Vec<(usize, usize)>> {
        let mut users = vec![Vec::new(); self.n_edges];
        for (k, paths) in self.paths.iter().enumerate() {
            for (p, edges) in paths.iter().enumerate() {
                for &e in edges {
                    if e < self.n_edges {
                        users[e].push((k, p));
                    }
                }
            }
        }
        users
    }
}

/// If `name` is `{prefix}::{tag}[{idx}]` — directly or nested inside a KKT
/// `pf[..]` wrapper — returns the parsed index.
fn te_row_index(name: &str, prefix: &str, tag: &str) -> Option<usize> {
    let key = names::tagged_key(name, prefix, tag).or_else(|| {
        let (_, pf_key) = names::any_tagged_key(name, "pf")?;
        names::tagged_key(pf_key, prefix, tag)
    })?;
    key.parse().ok()
}

/// Runs the TE-semantic family for one encoder `prefix` against `ctx`.
pub fn check(model: &Model, prefix: &str, ctx: &TopologyContext) -> Report {
    let mut report = Report::new();

    // Flow-variable grid of this prefix.
    let mut flow_of_var: HashMap<usize, (usize, usize)> = HashMap::new();
    for i in 0..model.n_vars() {
        let name = model.var_name(VarRef(i));
        let Some((k, p)) = names::flow_indices(name, prefix) else {
            continue;
        };
        if k >= ctx.n_pairs || ctx.paths.get(k).is_none_or(|ps| p >= ps.len()) {
            report.push(
                "MC304",
                Severity::Error,
                Span::Var {
                    index: i,
                    name: name.to_string(),
                },
                format!(
                    "flow variable indexes commodity {k} path {p}, outside the topology \
                     shape ({} pairs)",
                    ctx.n_pairs
                ),
            );
            continue;
        }
        flow_of_var.insert(i, (k, p));
    }
    if flow_of_var.is_empty() {
        return report; // prefix not present in this model
    }

    let mut cap_rows: HashMap<usize, usize> = HashMap::new();
    for (i, c) in model.constraints().iter().enumerate() {
        let Some(name) = c.name.as_deref() else {
            continue;
        };
        let span = || Span::Constraint {
            index: i,
            name: name.to_string(),
        };

        if let Some(k) = te_row_index(name, prefix, "dem") {
            // Demand row: Σ_p f[k][p] − d_k ≤ 0. Every flow term must be
            // commodity k with unit coefficient, and every path must appear.
            let mut seen_paths: HashSet<usize> = HashSet::new();
            for (v, coef) in c.expr.terms() {
                if let Some(&(vk, vp)) = flow_of_var.get(&v.0) {
                    if vk != k {
                        report.push(
                            "MC301",
                            Severity::Error,
                            span(),
                            format!(
                                "demand row of commodity {k} touches `{}` of commodity {vk}",
                                model.var_name(v)
                            ),
                        );
                    } else if (coef - 1.0).abs() > 1e-9 {
                        report.push(
                            "MC301",
                            Severity::Error,
                            span(),
                            format!(
                                "demand row of commodity {k} carries `{}` with \
                                 coefficient {coef} (expected 1)",
                                model.var_name(v)
                            ),
                        );
                    } else {
                        seen_paths.insert(vp);
                    }
                }
            }
            let want = ctx.paths.get(k).map_or(0, Vec::len);
            if seen_paths.len() != want {
                report.push(
                    "MC301",
                    Severity::Error,
                    span(),
                    format!(
                        "demand row of commodity {k} covers {} of its {want} paths",
                        seen_paths.len()
                    ),
                );
            }
        } else if let Some(e) = te_row_index(name, prefix, "cap") {
            cap_rows.insert(e, i);
            let users: HashSet<(usize, usize)> = ctx
                .edge_users()
                .get(e)
                .map(|u| u.iter().copied().collect())
                .unwrap_or_default();
            let mut seen: HashSet<(usize, usize)> = HashSet::new();
            for (v, _) in c.expr.terms() {
                if let Some(&(vk, vp)) = flow_of_var.get(&v.0) {
                    if !users.contains(&(vk, vp)) {
                        report.push(
                            "MC303",
                            Severity::Error,
                            span(),
                            format!(
                                "capacity row of edge {e} includes `{}` whose path does \
                                 not traverse the edge",
                                model.var_name(v)
                            ),
                        );
                    } else {
                        seen.insert((vk, vp));
                    }
                }
            }
            for &(k, p) in users.iter() {
                if !seen.contains(&(k, p)) {
                    report.push(
                        "MC303",
                        Severity::Error,
                        span(),
                        format!(
                            "capacity row of edge {e} misses flow variable \
                             `{prefix}::f[{k}][{p}]` which traverses the edge"
                        ),
                    );
                }
            }
        }
    }

    // Capacity coverage: every used edge needs a row.
    for (e, users) in ctx.edge_users().iter().enumerate() {
        if !users.is_empty() && !cap_rows.contains_key(&e) {
            report.push(
                "MC302",
                Severity::Error,
                Span::Model,
                format!(
                    "edge {e} is traversed by {} path(s) but `{prefix}` has no capacity \
                     row `{prefix}::cap[{e}]`",
                    users.len()
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_model::{LinExpr, Model, ObjSense, Sense};

    /// Two commodities over two edges: k0 uses path [0], k1 uses path [0, 1].
    fn ctx() -> TopologyContext {
        TopologyContext {
            n_pairs: 2,
            n_edges: 2,
            paths: vec![vec![vec![0]], vec![vec![0, 1]]],
        }
    }

    fn build(skip_cap1: bool, cross_commodity: bool) -> Model {
        let mut m = Model::new();
        let f00 = m.add_var("x::f[0][0]", 0.0, f64::INFINITY).unwrap();
        let f10 = m.add_var("x::f[1][0]", 0.0, f64::INFINITY).unwrap();
        let d0 = m.add_var("d[0]", 0.0, 10.0).unwrap();
        let d1 = m.add_var("d[1]", 0.0, 10.0).unwrap();
        let extra = if cross_commodity { Some(f10) } else { None };
        let mut dem0 = LinExpr::from(f00) - d0;
        if let Some(v) = extra {
            dem0.add_term(v, 1.0);
        }
        m.constrain_named("x::dem[0]", dem0, Sense::Le, 0.0).unwrap();
        m.constrain_named("x::dem[1]", LinExpr::from(f10) - d1, Sense::Le, 0.0)
            .unwrap();
        m.constrain_named("x::cap[0]", f00 + f10, Sense::Le, 10.0)
            .unwrap();
        if !skip_cap1 {
            m.constrain_named("x::cap[1]", LinExpr::from(f10), Sense::Le, 10.0)
                .unwrap();
        }
        m.set_objective(ObjSense::Max, f00 + f10).unwrap();
        m
    }

    #[test]
    fn clean_te_encoding_passes() {
        let r = check(&build(false, false), "x", &ctx());
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn missing_capacity_row_is_mc302() {
        let r = check(&build(true, false), "x", &ctx());
        assert!(r.has_code("MC302"), "{r}");
    }

    #[test]
    fn cross_commodity_demand_row_is_mc301() {
        let r = check(&build(false, true), "x", &ctx());
        assert!(r.has_code("MC301"), "{r}");
    }

    #[test]
    fn incidence_mismatch_is_mc303() {
        let mut m = build(false, false);
        // Tack the k0 flow onto edge 1's capacity row: its path stops at 0.
        let cap1 = m
            .constraints()
            .iter()
            .position(|c| c.name.as_deref() == Some("x::cap[1]"))
            .unwrap();
        m.mutate_constraint(cap1, |c| c.expr.add_term(VarRef(0), 1.0));
        let r = check(&m, "x", &ctx());
        assert!(r.has_code("MC303"), "{r}");
    }
}
