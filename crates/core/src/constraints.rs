//! `ConstrainedSet` — realistic constraints on adversarial inputs (§3.3).
//!
//! The paper names two classes:
//!
//! * **Bounded distance from a goalpost**: demands stay within an absolute
//!   or relative distance of (possibly partially specified) reference
//!   demands, e.g. historically observed traffic.
//! * **Intra-input constraints**: linear relations among the demands
//!   themselves, e.g. every demand within a band around the mean demand.
//!
//! §5 additionally suggests *diverse* bad inputs found by "iteratively
//! removing the previously-found inputs from the search space"; this is the
//! [`ConstrainedSet::exclude`] L∞ exclusion ball, encoded with indicator
//! binaries.

use crate::{CoreError, CoreResult};
use metaopt_model::{bigm, LinExpr, Model, Sense, VarRef};

/// Distance measure for goalpost constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distance {
    /// `|d_k − g_k| <= dist` in absolute volume units.
    Absolute(f64),
    /// `|d_k − g_k| <= frac · g_k` relative to the goalpost itself.
    RelativeFraction(f64),
}

/// A goalpost: per-pair reference volumes (`None` = unconstrained pair)
/// plus an allowed distance.
#[derive(Debug, Clone)]
pub struct Goalpost {
    /// Reference volume per pair (`None` leaves the pair unconstrained —
    /// "the goalpost may be partially specified").
    pub target: Vec<Option<f64>>,
    /// Allowed distance from the reference.
    pub distance: Distance,
}

/// A linear intra-input constraint `Σ coeffs_k · d_k SENSE rhs`.
#[derive(Debug, Clone)]
pub struct LinearDemandConstraint {
    /// Sparse coefficients `(pair index, coefficient)`.
    pub coeffs: Vec<(usize, f64)>,
    /// Relational sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// The constrained input space of Eq. 1.
#[derive(Debug, Clone, Default)]
pub struct ConstrainedSet {
    /// Upper bound per demand volume (default: the instance's largest link
    /// capacity — larger volumes cannot increase carried flow).
    pub d_max: Option<f64>,
    /// Goalpost constraints.
    pub goalposts: Vec<Goalpost>,
    /// Intra-input linear constraints.
    pub intra: Vec<LinearDemandConstraint>,
    /// Excluded L∞ balls `(center, radius)`: the input must differ from
    /// each center by at least `radius` in some coordinate.
    pub excluded: Vec<(Vec<f64>, f64)>,
    /// Optional demand quantization grid: when set, every demand must take
    /// one of these values (§5: "constraining or quantizing the space of
    /// inputs can speed up the search without sacrificing quality").
    pub quantize_levels: Option<Vec<f64>>,
}

impl ConstrainedSet {
    /// The unconstrained space (box only).
    pub fn unconstrained() -> Self {
        ConstrainedSet::default()
    }

    /// Sets the per-demand upper bound.
    pub fn with_d_max(mut self, d_max: f64) -> Self {
        self.d_max = Some(d_max);
        self
    }

    /// Adds a fully-specified goalpost.
    pub fn near(mut self, reference: &[f64], distance: Distance) -> Self {
        self.goalposts.push(Goalpost {
            target: reference.iter().map(|&v| Some(v)).collect(),
            distance,
        });
        self
    }

    /// Adds a partially-specified goalpost.
    pub fn near_partial(mut self, reference: Vec<Option<f64>>, distance: Distance) -> Self {
        self.goalposts.push(Goalpost {
            target: reference,
            distance,
        });
        self
    }

    /// Intra-input constraint: every demand within `band` of the mean
    /// demand (`|d_k − mean(d)| <= band`), the paper's worked example.
    pub fn within_band_of_mean(mut self, n_pairs: usize, band: f64) -> Self {
        let inv = 1.0 / n_pairs as f64;
        for k in 0..n_pairs {
            // d_k − Σ_j d_j / n <= band
            let mut coeffs: Vec<(usize, f64)> = (0..n_pairs).map(|j| (j, -inv)).collect();
            coeffs[k].1 += 1.0;
            self.intra.push(LinearDemandConstraint {
                coeffs: coeffs.clone(),
                sense: Sense::Le,
                rhs: band,
            });
            // mean − d_k <= band  ⇔  −(d_k − mean) <= band
            let neg: Vec<(usize, f64)> = coeffs.iter().map(|&(j, c)| (j, -c)).collect();
            self.intra.push(LinearDemandConstraint {
                coeffs: neg,
                sense: Sense::Le,
                rhs: band,
            });
        }
        self
    }

    /// Adds a raw linear intra-input constraint.
    pub fn with_linear(mut self, c: LinearDemandConstraint) -> Self {
        self.intra.push(c);
        self
    }

    /// Excludes an L∞ ball around a previously found input (diverse-input
    /// search, §5).
    pub fn exclude(mut self, center: Vec<f64>, radius: f64) -> Self {
        self.excluded.push((center, radius));
        self
    }

    /// Restricts every demand to the given value grid (§5's quantization
    /// speedup). For a broad class of heuristics, the worst gaps occur at
    /// extremum points, so a small grid such as `{0, T_d, d_max}` loses
    /// little quality while letting branch-and-bound close bounds far
    /// faster. Levels must be nonnegative and finite.
    pub fn quantized(mut self, levels: Vec<f64>) -> Self {
        self.quantize_levels = Some(levels);
        self
    }

    /// Hose-model constraints ([3, 28] in the paper): per-node bounds on
    /// total egress and ingress demand. `pairs[k]` gives `(src, dst)` node
    /// indices of demand `k`; `egress[u]`/`ingress[u]` bound node `u`'s
    /// totals (infinite = unconstrained).
    pub fn hose(
        mut self,
        pairs: &[(usize, usize)],
        egress: &[f64],
        ingress: &[f64],
    ) -> Self {
        let n_nodes = egress.len().max(ingress.len());
        for u in 0..n_nodes {
            let out_cap = egress.get(u).copied().unwrap_or(f64::INFINITY);
            if out_cap.is_finite() {
                let coeffs: Vec<(usize, f64)> = pairs
                    .iter()
                    .enumerate()
                    .filter(|(_, &(s, _))| s == u)
                    .map(|(k, _)| (k, 1.0))
                    .collect();
                if !coeffs.is_empty() {
                    self.intra.push(LinearDemandConstraint {
                        coeffs,
                        sense: Sense::Le,
                        rhs: out_cap,
                    });
                }
            }
            let in_cap = ingress.get(u).copied().unwrap_or(f64::INFINITY);
            if in_cap.is_finite() {
                let coeffs: Vec<(usize, f64)> = pairs
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, t))| t == u)
                    .map(|(k, _)| (k, 1.0))
                    .collect();
                if !coeffs.is_empty() {
                    self.intra.push(LinearDemandConstraint {
                        coeffs,
                        sense: Sense::Le,
                        rhs: in_cap,
                    });
                }
            }
        }
        self
    }

    /// Emits all constraints onto `model` for demand variables `d`.
    /// `d_hi` is the resolved per-demand upper bound.
    pub fn apply(
        &self,
        model: &mut Model,
        d: &[VarRef],
        d_hi: f64,
    ) -> CoreResult<()> {
        for (gi, gp) in self.goalposts.iter().enumerate() {
            if gp.target.len() != d.len() {
                return Err(CoreError::Config(format!(
                    "goalpost {gi} has {} entries for {} pairs",
                    gp.target.len(),
                    d.len()
                )));
            }
            for (k, tgt) in gp.target.iter().enumerate() {
                let Some(g) = tgt else { continue };
                let dist = match gp.distance {
                    Distance::Absolute(a) => a,
                    Distance::RelativeFraction(f) => f * g,
                };
                if dist < 0.0 || !dist.is_finite() {
                    return Err(CoreError::Config(format!(
                        "goalpost {gi} pair {k}: bad distance {dist}"
                    )));
                }
                model.constrain_named(
                    format!("goal[{gi}][{k}]::hi"),
                    LinExpr::from(d[k]),
                    Sense::Le,
                    g + dist,
                )?;
                model.constrain_named(
                    format!("goal[{gi}][{k}]::lo"),
                    LinExpr::from(d[k]),
                    Sense::Ge,
                    (g - dist).max(0.0),
                )?;
            }
        }
        for (ci, c) in self.intra.iter().enumerate() {
            let mut e = LinExpr::zero();
            for &(k, coef) in &c.coeffs {
                if k >= d.len() {
                    return Err(CoreError::Config(format!(
                        "intra constraint {ci} references pair {k} of {}",
                        d.len()
                    )));
                }
                e.add_term(d[k], coef);
            }
            model.constrain_named(format!("intra[{ci}]"), e, c.sense, c.rhs)?;
        }
        for (xi, (center, radius)) in self.excluded.iter().enumerate() {
            if center.len() != d.len() {
                return Err(CoreError::Config(format!(
                    "exclusion {xi} has {} entries for {} pairs",
                    center.len(),
                    d.len()
                )));
            }
            if *radius <= 0.0 {
                return Err(CoreError::Config(format!(
                    "exclusion {xi}: radius must be positive"
                )));
            }
            // At least one coordinate deviates by >= radius. Indicators:
            // up_k = 1 ⇒ d_k >= c_k + r;  dn_k = 1 ⇒ d_k <= c_k − r.
            let mut any = LinExpr::zero();
            for k in 0..d.len() {
                if center[k] + radius <= d_hi {
                    let up = model.add_binary(format!("excl[{xi}]::up[{k}]"))?;
                    // up = 1 ⇒ c_k + r − d_k <= 0.
                    bigm::indicator_le(
                        model,
                        &format!("excl[{xi}]::up[{k}]"),
                        up,
                        LinExpr::constant(center[k] + radius) - d[k],
                        center[k] + radius,
                    )?;
                    any.add_term(up, 1.0);
                }
                if center[k] - radius >= 0.0 {
                    let dn = model.add_binary(format!("excl[{xi}]::dn[{k}]"))?;
                    // dn = 1 ⇒ d_k − (c_k − r) <= 0.
                    bigm::indicator_le(
                        model,
                        &format!("excl[{xi}]::dn[{k}]"),
                        dn,
                        LinExpr::from(d[k]) - (center[k] - radius),
                        d_hi - (center[k] - radius),
                    )?;
                    any.add_term(dn, 1.0);
                }
            }
            if any.is_constant() {
                return Err(CoreError::Config(format!(
                    "exclusion {xi}: radius {radius} leaves no reachable deviation"
                )));
            }
            model.constrain_named(format!("excl[{xi}]::any"), any, Sense::Ge, 1.0)?;
        }
        if let Some(levels) = &self.quantize_levels {
            if levels.is_empty() {
                return Err(CoreError::Config("empty quantization grid".into()));
            }
            for (li, l) in levels.iter().enumerate() {
                if !l.is_finite() || *l < 0.0 || *l > d_hi + 1e-9 {
                    return Err(CoreError::Config(format!(
                        "quantization level {li} = {l} outside [0, {d_hi}]"
                    )));
                }
            }
            for (k, &dk) in d.iter().enumerate() {
                // d_k = Σ_i level_i · z_{k,i},  Σ_i z_{k,i} = 1.
                let mut pick = LinExpr::zero();
                let mut value = LinExpr::from(dk);
                for (li, &l) in levels.iter().enumerate() {
                    let z = model.add_binary(format!("quant[{k}][{li}]"))?;
                    pick.add_term(z, 1.0);
                    value.add_term(z, -l);
                }
                model.constrain_named(format!("quant[{k}]::one"), pick, Sense::Eq, 1.0)?;
                model.constrain_named(format!("quant[{k}]::val"), value, Sense::Eq, 0.0)?;
            }
        }
        Ok(())
    }

    /// Checks a concrete demand vector against this set (used to vet
    /// incumbent-callback candidates). Linear/goalpost violations beyond
    /// `tol` or landing inside an exclusion ball fail the check.
    pub fn contains(&self, demands: &[f64], tol: f64) -> bool {
        for gp in &self.goalposts {
            for (k, tgt) in gp.target.iter().enumerate() {
                let Some(g) = tgt else { continue };
                let dist = match gp.distance {
                    Distance::Absolute(a) => a,
                    Distance::RelativeFraction(f) => f * g,
                };
                if (demands[k] - g).abs() > dist + tol {
                    return false;
                }
            }
        }
        for c in &self.intra {
            let v: f64 = c.coeffs.iter().map(|&(k, co)| co * demands[k]).sum();
            let ok = match c.sense {
                Sense::Le => v <= c.rhs + tol,
                Sense::Ge => v >= c.rhs - tol,
                Sense::Eq => (v - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        for (center, radius) in &self.excluded {
            let linf = demands
                .iter()
                .zip(center)
                .map(|(d, c)| (d - c).abs())
                .fold(0.0, f64::max);
            if linf < radius - tol {
                return false;
            }
        }
        if let Some(levels) = &self.quantize_levels {
            for &d in demands {
                if !levels.iter().any(|&l| (d - l).abs() <= tol) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_model::Model;

    fn demand_vars(m: &mut Model, n: usize, hi: f64) -> Vec<VarRef> {
        (0..n)
            .map(|k| m.add_var(format!("d{k}"), 0.0, hi).unwrap())
            .collect()
    }

    #[test]
    fn goalpost_bounds_apply() {
        let mut m = Model::new();
        let d = demand_vars(&mut m, 2, 100.0);
        let cs = ConstrainedSet::unconstrained().near(&[50.0, 20.0], Distance::Absolute(5.0));
        cs.apply(&mut m, &d, 100.0).unwrap();
        assert!(m.violation(&[53.0, 18.0], 1e-9) <= 1e-9);
        assert!(m.violation(&[60.0, 20.0], 1e-9) > 1.0);
        assert!(cs.contains(&[53.0, 18.0], 1e-9));
        assert!(!cs.contains(&[60.0, 20.0], 1e-9));
    }

    #[test]
    fn partial_goalpost_leaves_pairs_free() {
        let mut m = Model::new();
        let d = demand_vars(&mut m, 2, 100.0);
        let cs = ConstrainedSet::unconstrained()
            .near_partial(vec![Some(10.0), None], Distance::RelativeFraction(0.1));
        cs.apply(&mut m, &d, 100.0).unwrap();
        assert!(m.violation(&[10.5, 95.0], 1e-9) <= 1e-9);
        assert!(m.violation(&[12.0, 0.0], 1e-9) > 0.5);
    }

    #[test]
    fn band_around_mean() {
        let cs = ConstrainedSet::unconstrained().within_band_of_mean(3, 10.0);
        assert!(cs.contains(&[20.0, 25.0, 30.0], 1e-9));
        assert!(!cs.contains(&[0.0, 0.0, 40.0], 1e-9)); // 40 vs mean 13.3
        let mut m = Model::new();
        let d = demand_vars(&mut m, 3, 100.0);
        cs.apply(&mut m, &d, 100.0).unwrap();
        assert!(m.violation(&[20.0, 25.0, 30.0], 1e-9) <= 1e-6);
        assert!(m.violation(&[0.0, 0.0, 40.0], 1e-9) > 1.0);
    }

    #[test]
    fn exclusion_ball_requires_deviation() {
        let cs = ConstrainedSet::unconstrained().exclude(vec![50.0, 50.0], 10.0);
        assert!(!cs.contains(&[55.0, 45.0], 1e-9)); // inside the ball
        assert!(cs.contains(&[65.0, 50.0], 1e-9)); // one coord deviates 15
        // Model form: a point inside the ball admits no valid indicator
        // assignment (the `any >= 1` row cannot be satisfied).
        let mut m = Model::new();
        let d = demand_vars(&mut m, 2, 100.0);
        cs.apply(&mut m, &d, 100.0).unwrap();
        // Enumerate all 16 indicator assignments at an inside point.
        let n = m.n_vars();
        let mut ok = false;
        for mask in 0..16u32 {
            let mut vals = vec![0.0; n];
            vals[d[0].0] = 55.0;
            vals[d[1].0] = 45.0;
            for b in 0..4 {
                vals[2 + b] = (mask >> b & 1) as f64;
            }
            if m.violation(&vals, 1e-9) <= 1e-9 {
                ok = true;
            }
        }
        assert!(!ok, "inside-ball point should be infeasible");
    }

    #[test]
    fn config_errors_detected() {
        let mut m = Model::new();
        let d = demand_vars(&mut m, 2, 100.0);
        let bad = ConstrainedSet::unconstrained().near(&[1.0], Distance::Absolute(1.0));
        assert!(bad.apply(&mut m, &d, 100.0).is_err());
        let bad2 = ConstrainedSet::unconstrained().exclude(vec![0.0, 0.0], -1.0);
        assert!(bad2.apply(&mut m, &d, 100.0).is_err());
    }
}
