//! Linear expressions with operator overloading.
//!
//! A [`LinExpr`] is `Σ coef_j · x_j + constant`. Terms are kept sorted by
//! variable index with duplicates merged, so expressions stay canonical and
//! cheap to compare/evaluate.

use crate::model::VarRef;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A linear expression over model variables.
///
/// ```
/// use metaopt_model::{LinExpr, VarRef};
///
/// let x = VarRef(0);
/// let y = VarRef(1);
/// let e = 2.0 * x + (y - 1.0) * 3.0; // 2x + 3y − 3
/// assert_eq!(e.coef(x), 2.0);
/// assert_eq!(e.coef(y), 3.0);
/// assert_eq!(e.constant_part(), -3.0);
/// assert_eq!(e.eval(&[5.0, 1.0]), 10.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` pairs, sorted by variable index, deduped.
    terms: Vec<(VarRef, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// A single-term expression `coef · v`.
    pub fn term(v: VarRef, coef: f64) -> Self {
        if coef == 0.0 {
            LinExpr::zero()
        } else {
            LinExpr {
                terms: vec![(v, coef)],
                constant: 0.0,
            }
        }
    }

    /// Sum of unit-coefficient terms.
    pub fn sum<I: IntoIterator<Item = VarRef>>(vars: I) -> Self {
        let mut e = LinExpr::zero();
        for v in vars {
            e.add_term(v, 1.0);
        }
        e
    }

    /// Adds `coef · v` in place.
    pub fn add_term(&mut self, v: VarRef, coef: f64) {
        if coef == 0.0 {
            return;
        }
        match self.terms.binary_search_by_key(&v.0, |(t, _)| t.0) {
            Ok(i) => {
                self.terms[i].1 += coef;
                if self.terms[i].1 == 0.0 {
                    self.terms.remove(i);
                }
            }
            Err(i) => self.terms.insert(i, (v, coef)),
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, c: f64) {
        self.constant += c;
    }

    /// The constant part.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Iterates `(variable, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (VarRef, f64)> + '_ {
        self.terms.iter().copied()
    }

    /// Number of variable terms.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coef(&self, v: VarRef) -> f64 {
        self.terms
            .binary_search_by_key(&v.0, |(t, _)| t.0)
            .map_or(0.0, |i| self.terms[i].1)
    }

    /// Whether the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression on a dense assignment (indexed by variable).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms
            .iter()
            .map(|(v, c)| c * values[v.0])
            .sum::<f64>()
            + self.constant
    }

    /// Largest absolute coefficient (0 for constants); useful for scaling
    /// diagnostics.
    pub fn max_abs_coef(&self) -> f64 {
        self.terms
            .iter()
            .map(|(_, c)| c.abs())
            .fold(0.0, f64::max)
    }

    /// `self * k` without consuming.
    pub fn scaled(&self, k: f64) -> LinExpr {
        if k == 0.0 {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self.terms.iter().map(|&(v, c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }
}

impl From<VarRef> for LinExpr {
    fn from(v: VarRef) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

// --- operator impls -------------------------------------------------------

impl AddAssign<LinExpr> for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl AddAssign<VarRef> for LinExpr {
    fn add_assign(&mut self, rhs: VarRef) {
        self.add_term(rhs, 1.0);
    }
}

impl AddAssign<f64> for LinExpr {
    fn add_assign(&mut self, rhs: f64) {
        self.constant += rhs;
    }
}

impl SubAssign<LinExpr> for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

macro_rules! impl_binop {
    ($lhs:ty, $rhs:ty) => {
        impl Add<$rhs> for $lhs {
            type Output = LinExpr;
            fn add(self, rhs: $rhs) -> LinExpr {
                let mut e: LinExpr = self.into();
                let r: LinExpr = rhs.into();
                e += r;
                e
            }
        }
        impl Sub<$rhs> for $lhs {
            type Output = LinExpr;
            fn sub(self, rhs: $rhs) -> LinExpr {
                let mut e: LinExpr = self.into();
                let r: LinExpr = rhs.into();
                e -= r;
                e
            }
        }
    };
}

impl_binop!(LinExpr, LinExpr);
impl_binop!(LinExpr, VarRef);
impl_binop!(LinExpr, f64);
impl_binop!(VarRef, LinExpr);
impl_binop!(VarRef, VarRef);
impl_binop!(VarRef, f64);
impl_binop!(f64, LinExpr);
impl_binop!(f64, VarRef);

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scaled(-1.0)
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        self.scaled(k)
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e.scaled(self)
    }
}

impl Mul<f64> for VarRef {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        LinExpr::term(self, k)
    }
}

impl Mul<VarRef> for f64 {
    type Output = LinExpr;
    fn mul(self, v: VarRef) -> LinExpr {
        LinExpr::term(v, self)
    }
}

impl std::iter::Sum<LinExpr> for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        let mut acc = LinExpr::zero();
        for e in iter {
            acc += e;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarRef {
        VarRef(i)
    }

    #[test]
    fn canonical_merge() {
        let e = v(1) + v(0) + v(1) * 2.0 - 3.0;
        assert_eq!(e.coef(v(0)), 1.0);
        assert_eq!(e.coef(v(1)), 3.0);
        assert_eq!(e.constant_part(), -3.0);
        assert_eq!(e.n_terms(), 2);
    }

    #[test]
    fn cancellation_drops_terms() {
        let e = v(0) * 2.0 - v(0) * 2.0 + 1.0;
        assert!(e.is_constant());
        assert_eq!(e.constant_part(), 1.0);
    }

    #[test]
    fn eval_and_scale() {
        let e = v(0) * 2.0 + v(2) * -1.0 + 5.0;
        assert_eq!(e.eval(&[1.0, 99.0, 3.0]), 4.0);
        let s = e.scaled(-2.0);
        assert_eq!(s.eval(&[1.0, 99.0, 3.0]), -8.0);
    }

    #[test]
    fn sum_iterator() {
        let e: LinExpr = [v(0), v(1), v(0)].into_iter().map(LinExpr::from).sum();
        assert_eq!(e.coef(v(0)), 2.0);
        assert_eq!(e.coef(v(1)), 1.0);
    }

    #[test]
    fn mixed_arithmetic() {
        let e = 2.0 * v(0) + (v(1) - 1.0) * 3.0;
        assert_eq!(e.coef(v(0)), 2.0);
        assert_eq!(e.coef(v(1)), 3.0);
        assert_eq!(e.constant_part(), -3.0);
    }
}
