//! Cross-crate soundness properties on randomized small instances:
//!
//! * a heuristic never beats OPT (`gap >= 0` pointwise),
//! * the white-box finder's reported gap is *certified*: re-running the
//!   real OPT and the real heuristic on the discovered demands reproduces
//!   the model's objective,
//! * the white-box optimum dominates black-box search and exhaustive grid
//!   probing on the same instance.

use metaopt::blackbox::{hill_climb, SearchConfig};
use metaopt::core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt::te::{eval::gap, Heuristic, TeInstance};
use metaopt::topology::synth::{circulant, line, star};
use metaopt::topology::Topology;
use proptest::prelude::*;
use std::time::Duration;

fn small_topologies() -> Vec<Topology> {
    vec![
        line(3, 50.0),
        line(4, 50.0),
        star(3, 50.0),
        circulant(4, 1, 50.0),
        circulant(5, 1, 50.0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pointwise: OPT(d) >= DP(d) and OPT(d) >= POP(d) on random demands.
    #[test]
    fn heuristics_never_beat_opt(
        topo_idx in 0usize..5,
        seed in 0u64..1000,
        threshold_frac in 0.0f64..0.5,
    ) {
        use rand::{Rng, SeedableRng};
        let topo = small_topologies().swap_remove(topo_idx);
        let inst = TeInstance::all_pairs(topo, 2).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let demands: Vec<f64> = (0..inst.n_pairs()).map(|_| rng.gen_range(0.0..50.0)).collect();

        let dp = Heuristic::DemandPinning { threshold: threshold_frac * 50.0 };
        let g = gap(&inst, &dp, &demands).unwrap();
        prop_assert!(g >= -1e-7, "DP gap {g} < 0");

        let parts = metaopt::te::pop::random_partitions(inst.n_pairs(), 2, 2, &mut rng);
        let pop = Heuristic::Pop { partitions: parts };
        let g = gap(&inst, &pop, &demands).unwrap();
        prop_assert!(g >= -1e-7, "POP gap {g} < 0");
    }
}

/// The finder's model gap equals the independently re-measured gap on every
/// small topology (full certification).
#[test]
fn whitebox_gap_is_certified_everywhere() {
    for topo in small_topologies() {
        let name = topo.name().to_string();
        let inst = TeInstance::all_pairs(topo, 2).unwrap();
        let spec = HeuristicSpec::DemandPinning { threshold: 10.0 };
        let r = find_adversarial_gap(
            &inst,
            &spec,
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(20.0),
        )
        .unwrap();
        assert!(
            r.certification_error() < 1e-5,
            "{name}: model gap {} vs verified {}",
            r.model_gap,
            r.verified_gap
        );
        assert!(r.verified_gap >= -1e-7, "{name}: negative gap");
    }
}

/// White-box dominates a budget-matched hill climb on the 4-ring.
#[test]
fn whitebox_dominates_blackbox() {
    let inst = TeInstance::all_pairs(circulant(4, 1, 50.0), 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 10.0 };
    let wb = find_adversarial_gap(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::budgeted(10.0),
    )
    .unwrap();

    let h = Heuristic::DemandPinning { threshold: 10.0 };
    let bb = hill_climb(
        &inst,
        &h,
        &SearchConfig {
            time_budget: Duration::from_secs(10),
            seed: 3,
            ..Default::default()
        },
    )
    .unwrap();

    assert!(
        wb.verified_gap >= bb.best_gap - 1e-6,
        "whitebox {} < blackbox {}",
        wb.verified_gap,
        bb.best_gap
    );
}

/// The finder respects exclusion of DP-infeasible inputs: every reported
/// demand vector keeps the pinned load within capacity (§5).
#[test]
fn reported_inputs_are_dp_feasible() {
    for topo in small_topologies() {
        let inst = TeInstance::all_pairs(topo, 2).unwrap();
        let threshold = 20.0;
        let r = find_adversarial_gap(
            &inst,
            &HeuristicSpec::DemandPinning { threshold },
            &ConstrainedSet::unconstrained(),
            &FinderConfig::budgeted(10.0),
        )
        .unwrap();
        let load = metaopt::te::demand_pinning::pinned_load(&inst, &r.demands, threshold);
        for (e, l) in load.iter().enumerate() {
            let cap = inst.topo.capacity(metaopt::topology::EdgeId(e));
            assert!(
                *l <= cap + 1e-6,
                "{}: pinned load {l} exceeds capacity {cap} on edge {e}",
                inst.topo.name()
            );
        }
    }
}
