//! Checkpoint text round-trips on *real* adversarial-gap frontiers: the
//! Figure-1 demand-pinning encoding, interrupted by a node budget, must
//! serialize to text and come back bit-identical — and resuming through
//! the text boundary must finish at the same certified answer.

use metaopt::core::finder::build_adversarial_model;
use metaopt::core::{ConstrainedSet, FinderConfig, HeuristicSpec};
use metaopt::milp::{solve_resumable, Checkpoint, IncumbentCallback, MilpConfig, MilpStatus};
use metaopt::te::TeInstance;
use metaopt::topology::synth::figure1_triangle;

struct NoCallback;
impl IncumbentCallback for NoCallback {
    fn propose(&mut self, _relaxation: &[f64]) -> Option<(Vec<f64>, f64)> {
        None
    }
}

fn fig1_model() -> metaopt::core::finder::AdversarialModel {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    let inst = TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    build_adversarial_model(
        &inst,
        &spec,
        &ConstrainedSet::unconstrained(),
        &FinderConfig::default(),
    )
    .unwrap()
}

#[test]
fn fig1_budget_expired_frontier_round_trips() {
    let am = fig1_model();
    for max_nodes in [2, 5, 17] {
        let cfg = MilpConfig {
            max_nodes,
            ..MilpConfig::default()
        };
        let (sol, cp) = solve_resumable(&am.model, &cfg, &mut NoCallback, None).unwrap();
        assert_ne!(sol.status, MilpStatus::Optimal, "budget of {max_nodes} must expire");
        let cp = cp.expect("open frontier at the budget");
        let text = cp.to_text();
        let back = Checkpoint::from_text(&text).unwrap();
        assert_eq!(back.to_text(), text, "bit-exact round-trip at {max_nodes} nodes");

        // Resuming via text finds the same optimum as resuming in memory.
        let full = MilpConfig::default();
        let (a, _) = solve_resumable(&am.model, &full, &mut NoCallback, Some(cp)).unwrap();
        let (b, _) = solve_resumable(&am.model, &full, &mut NoCallback, Some(back)).unwrap();
        assert_eq!(a.status, b.status);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.nodes, b.nodes);
    }
}
