//! Criterion benches — one kernel per paper figure, on instances sized so
//! `cargo bench` finishes in minutes. The full-scale series come from the
//! `fig*` binaries (see EXPERIMENTS.md); these benches track the *latency*
//! of each figure's representative computation so regressions show up.

use criterion::{criterion_group, criterion_main, Criterion};
use metaopt_core::{find_adversarial_gap, ConstrainedSet, FinderConfig, HeuristicSpec, PopMode};
use metaopt_milp::MilpConfig;
use metaopt_te::{demand_pinning::demand_pinning, opt::opt_max_flow, pop::random_partitions, TeInstance};
use metaopt_topology::synth::{circulant, figure1_triangle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fig1_instance() -> TeInstance {
    let (t, [n1, n2, n3]) = figure1_triangle(100.0);
    TeInstance::with_pairs(t, vec![(n1, n3), (n1, n2), (n2, n3)], 2).unwrap()
}

fn quick_cfg() -> FinderConfig {
    FinderConfig {
        milp: MilpConfig {
            max_nodes: 200,
            ..MilpConfig::default()
        },
        ..FinderConfig::default()
    }
}

/// Figure 1: DP vs OPT evaluation on the triangle.
fn bench_fig1(c: &mut Criterion) {
    let inst = fig1_instance();
    let demands = vec![50.0, 100.0, 100.0];
    c.bench_function("fig1_dp_and_opt_eval", |b| {
        b.iter(|| {
            let dp = demand_pinning(&inst, &demands, 50.0).unwrap();
            let opt = opt_max_flow(&inst, &demands).unwrap();
            std::hint::black_box(opt.total_flow - dp.total_flow)
        });
    });
}

/// Figure 2: the rectangle KKT feasibility solve (see examples/quickstart).
fn bench_fig2(c: &mut Criterion) {
    use metaopt_model::{kkt, InnerProblem, LinExpr, Model, ObjSense, Sense};
    c.bench_function("fig2_rectangle_kkt_solve", |b| {
        b.iter(|| {
            let mut m = Model::new();
            let p = m.add_var("P", 8.0, 8.0).unwrap();
            let mut inner = InnerProblem::new("rect");
            let w = inner
                .add_var(&mut m, "w", f64::NEG_INFINITY, f64::INFINITY)
                .unwrap();
            let l = inner
                .add_var(&mut m, "l", f64::NEG_INFINITY, f64::INFINITY)
                .unwrap();
            inner
                .constrain(LinExpr::from(p) - 2.0 * w - 2.0 * l, Sense::Le)
                .unwrap();
            inner.set_objective(ObjSense::Min, LinExpr::zero());
            inner.add_quadratic(w, 1.0);
            inner.add_quadratic(l, 1.0);
            kkt::append_kkt(&mut m, &inner, 1e3).unwrap();
            let sol = metaopt_milp::solve(&m, &MilpConfig::default()).unwrap();
            std::hint::black_box(sol.values)
        });
    });
}

/// Figure 3 kernel: one white-box search on the triangle (node-capped).
fn bench_fig3(c: &mut Criterion) {
    let inst = fig1_instance();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    c.bench_function("fig3_whitebox_triangle", |b| {
        b.iter(|| {
            let r = find_adversarial_gap(
                &inst,
                &spec,
                &ConstrainedSet::unconstrained(),
                &quick_cfg(),
            )
            .unwrap();
            std::hint::black_box(r.verified_gap)
        });
    });
}

/// Figure 4 kernel: DP gap on a small circle topology (node-capped).
fn bench_fig4(c: &mut Criterion) {
    let inst = TeInstance::all_pairs(circulant(6, 1, 100.0), 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 5.0 };
    c.bench_function("fig4_whitebox_circle6", |b| {
        b.iter(|| {
            let r = find_adversarial_gap(
                &inst,
                &spec,
                &ConstrainedSet::unconstrained(),
                &quick_cfg(),
            )
            .unwrap();
            std::hint::black_box(r.verified_gap)
        });
    });
}

/// Figure 5 kernel: POP white-box search on a small circle (node-capped).
fn bench_fig5(c: &mut Criterion) {
    let inst = TeInstance::all_pairs(circulant(6, 1, 100.0), 2).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let partitions = random_partitions(inst.n_pairs(), 2, 2, &mut rng);
    let spec = HeuristicSpec::Pop {
        partitions,
        mode: PopMode::Average,
    };
    c.bench_function("fig5_whitebox_pop_circle6", |b| {
        b.iter(|| {
            let r = find_adversarial_gap(
                &inst,
                &spec,
                &ConstrainedSet::unconstrained(),
                &quick_cfg(),
            )
            .unwrap();
            std::hint::black_box(r.verified_gap)
        });
    });
}

/// Figure 6 kernel: building + compiling the metaopt model (size study).
fn bench_fig6(c: &mut Criterion) {
    let inst = TeInstance::all_pairs(circulant(8, 2, 1000.0), 2).unwrap();
    let spec = HeuristicSpec::DemandPinning { threshold: 50.0 };
    let cfg = FinderConfig::default();
    c.bench_function("fig6_model_build_and_stats", |b| {
        b.iter(|| {
            let am = metaopt_core::finder::build_adversarial_model(
                &inst,
                &spec,
                &ConstrainedSet::unconstrained(),
                &cfg,
            )
            .unwrap();
            std::hint::black_box(am.stats())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2, bench_fig3, bench_fig4, bench_fig5, bench_fig6
}
criterion_main!(benches);
