//! Overload behaviour: the bounded admission queue sheds bursts with
//! `429 Retry-After` instead of accepting work it cannot execute, and
//! per-client quotas isolate tenants from each other's bursts.

use metaopt_server::client::{request, Response};
use metaopt_server::json::Json;
use metaopt_server::{serve, GapServer, ServerConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metaopt-overload-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(cfg: ServerConfig) -> (Arc<GapServer>, String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let server = GapServer::open(cfg).unwrap();
    server.start_workers();
    let serve_server = Arc::clone(&server);
    let thread = std::thread::spawn(move || serve(&serve_server, listener).unwrap());
    (server, addr, thread)
}

fn call(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> Response {
    request(addr, method, path, body, Duration::from_secs(120)).unwrap()
}

fn tiny_job(label: &str, client: &str) -> Vec<u8> {
    format!(
        concat!(
            "{{\"client\":\"{}\",\"label\":\"{}\",",
            "\"topology\":{{\"kind\":\"fig1\",\"cap\":100.0}},",
            "\"heuristic\":{{\"kind\":\"dp\",\"threshold\":50.0}},",
            "\"sweep\":{{\"lo\":45.0,\"hi\":55.0,\"resolution\":10.0}},",
            "\"budget\":{{\"probe_cap_nodes\":4000,\"slice_nodes\":64}}}}"
        ),
        client, label
    )
    .into_bytes()
}

#[test]
fn burst_sheds_with_429_and_accepted_jobs_still_complete() {
    let (server, addr, serve_thread) = start(ServerConfig {
        name: "overload".into(),
        dir: tmp_dir("burst"),
        workers: 1,
        max_queue: 8,
        // Quotas out of the way: this test isolates queue shedding.
        quota_burst: 10_000.0,
        quota_per_sec: 10_000.0,
        ..ServerConfig::default()
    });

    // Pin the single worker with a deliberately long job (large topology,
    // fine resolution, small slices) so the burst below races a full
    // queue, not an empty one.
    let long = concat!(
        "{\"client\":\"pin\",\"label\":\"pin\",",
        "\"topology\":{\"kind\":\"builtin\",\"name\":\"abilene\",\"cap\":100.0},",
        "\"heuristic\":{\"kind\":\"dp\",\"threshold\":50.0},",
        "\"sweep\":{\"lo\":0.0,\"hi\":100.0,\"resolution\":0.25},",
        "\"budget\":{\"probe_cap_nodes\":2000000,\"slice_nodes\":8}}"
    );
    let resp = call(&addr, "POST", "/jobs", Some(long.as_bytes()));
    assert_eq!(resp.status, 202, "{}", resp.text());
    let pin_id = Json::parse(&resp.text())
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .unwrap();
    // Give the worker a moment to claim it off the queue.
    let claim_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let health = Json::parse(&call(&addr, "GET", "/healthz", None).text()).unwrap();
        if health.get("running").and_then(Json::as_u64) == Some(1) {
            break;
        }
        assert!(Instant::now() < claim_deadline, "worker never claimed the pin job");
        std::thread::sleep(Duration::from_millis(10));
    }

    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for i in 0..120 {
        let resp = call(
            &addr,
            "POST",
            "/jobs",
            Some(&tiny_job(&format!("burst-{i}"), &format!("tenant-{}", i % 7))),
        );
        match resp.status {
            202 => {
                let ack = Json::parse(&resp.text()).unwrap();
                accepted.push(ack.get("id").and_then(Json::as_u64).unwrap());
            }
            429 => {
                shed += 1;
                let err = Json::parse(&resp.text()).unwrap();
                assert_eq!(
                    err.get("error").and_then(Json::as_str),
                    Some("queue_saturated"),
                    "{}",
                    resp.text()
                );
                // Shed responses always advise a retry delay.
                let after: u64 = resp.header("retry-after").unwrap().parse().unwrap();
                assert!(after >= 1);
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
        // The queue depth visible over the API never exceeds the bound.
        let health = Json::parse(&call(&addr, "GET", "/healthz", None).text()).unwrap();
        assert!(health.get("queue_depth").and_then(Json::as_u64).unwrap() <= 8);
    }

    assert!(
        shed >= 100,
        "a 120-burst against queue bound 8 with a pinned worker must shed \
         most submissions, shed only {shed}"
    );
    assert!(!accepted.is_empty());
    assert_eq!(accepted.len() + shed, 120);

    // Free the worker: drain the pin job to its next checkpoint.
    let resp = call(&addr, "DELETE", &format!("/jobs/{pin_id}"), None);
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Every acknowledged job still reaches a certified terminal result —
    // shedding protects the accepted work, it never drops it.
    let deadline = Instant::now() + Duration::from_secs(240);
    for id in &accepted {
        loop {
            let job = Json::parse(&call(&addr, "GET", &format!("/jobs/{id}"), None).text()).unwrap();
            let status = job.get("status").and_then(Json::as_str).unwrap().to_string();
            if status == "done" {
                assert!(job
                    .get("result")
                    .and_then(|r| r.get("outcome_wire"))
                    .and_then(Json::as_str)
                    .is_some());
                break;
            }
            assert!(
                Instant::now() < deadline,
                "accepted job {id} stuck at `{status}`"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    call(&addr, "POST", "/admin/drain", None);
    serve_thread.join().unwrap();
    drop(server);
}

#[test]
fn per_client_quotas_isolate_tenants() {
    let (server, addr, serve_thread) = start(ServerConfig {
        name: "quota".into(),
        dir: tmp_dir("quota"),
        workers: 1,
        max_queue: 64,
        quota_burst: 2.0,
        quota_per_sec: 0.0, // no refill: the burst is the whole allowance
        ..ServerConfig::default()
    });

    // Alice burns her burst...
    for i in 0..2 {
        let resp = call(&addr, "POST", "/jobs", Some(&tiny_job(&format!("a{i}"), "alice")));
        assert_eq!(resp.status, 202, "{}", resp.text());
    }
    // ...then gets throttled with the quota taxonomy kind.
    let resp = call(&addr, "POST", "/jobs", Some(&tiny_job("a2", "alice")));
    assert_eq!(resp.status, 429, "{}", resp.text());
    let err = Json::parse(&resp.text()).unwrap();
    assert_eq!(
        err.get("error").and_then(Json::as_str),
        Some("quota_exhausted")
    );
    assert!(resp.header("retry-after").is_some());

    // Bob is unaffected: quotas are per-tenant, not global.
    let resp = call(&addr, "POST", "/jobs", Some(&tiny_job("b0", "bob")));
    assert_eq!(resp.status, 202, "{}", resp.text());

    call(&addr, "POST", "/admin/drain", None);
    serve_thread.join().unwrap();
    drop(server);
}
