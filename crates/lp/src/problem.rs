//! Linear-program builder.
//!
//! An [`LpProblem`] is the user-facing description of a linear program:
//!
//! ```text
//!   minimize    cᵀ x
//!   subject to  rlo_i <= a_iᵀ x <= rhi_i      (rows)
//!               lo_j  <=  x_j   <= hi_j       (variable bounds)
//! ```
//!
//! Maximization problems are expressed by callers by negating the objective
//! (the higher-level `metaopt-model` crate does this when compiling models).

use crate::sparse::SparseMat;
use crate::{LpError, LpResult};

/// Positive infinity used for unbounded-above bounds.
pub const INF: f64 = f64::INFINITY;
/// Negative infinity used for unbounded-below bounds.
pub const NEG_INF: f64 = f64::NEG_INFINITY;

/// Handle to a variable of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Handle to a row (constraint) of an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub usize);

/// Relational sense of a constraint row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSense {
    /// `aᵀx <= b`
    Le,
    /// `aᵀx == b`
    Eq,
    /// `aᵀx >= b`
    Ge,
}

/// A linear program under construction (see module docs for the canonical
/// form). Rows are kept as triplets by the builder; the solver converts
/// them to column-wise storage when it is constructed.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    pub(crate) obj: Vec<f64>,
    pub(crate) lo: Vec<f64>,
    pub(crate) hi: Vec<f64>,
    pub(crate) row_lo: Vec<f64>,
    pub(crate) row_hi: Vec<f64>,
    /// Triplets (row, col, value).
    pub(crate) triplets: Vec<(usize, usize, f64)>,
    /// Constant offset added to the reported objective value.
    pub(crate) obj_offset: f64,
}

impl LpProblem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of variables added so far.
    pub fn n_vars(&self) -> usize {
        self.obj.len()
    }

    /// Number of rows added so far.
    pub fn n_rows(&self) -> usize {
        self.row_lo.len()
    }

    /// Number of constraint-matrix nonzeros recorded so far.
    pub fn nnz(&self) -> usize {
        self.triplets.len()
    }

    /// Adds a variable with bounds `[lo, hi]` and objective coefficient
    /// `obj`. Either bound may be infinite.
    pub fn add_var(&mut self, lo: f64, hi: f64, obj: f64) -> LpResult<VarId> {
        if lo.is_nan() || hi.is_nan() || !obj.is_finite() {
            return Err(LpError::NotFinite(format!(
                "var bounds/obj: lo={lo}, hi={hi}, obj={obj}"
            )));
        }
        if lo > hi {
            return Err(LpError::EmptyBounds {
                var: self.obj.len(),
                lo,
                hi,
            });
        }
        self.obj.push(obj);
        self.lo.push(lo);
        self.hi.push(hi);
        Ok(VarId(self.obj.len() - 1))
    }

    /// Sets the objective coefficient of an existing variable.
    pub fn set_obj(&mut self, v: VarId, obj: f64) -> LpResult<()> {
        if !obj.is_finite() {
            return Err(LpError::NotFinite(format!("obj={obj}")));
        }
        let c = self
            .obj
            .get_mut(v.0)
            .ok_or_else(|| LpError::BadIndex(format!("var {}", v.0)))?;
        *c = obj;
        Ok(())
    }

    /// Overwrites the bounds of an existing variable.
    pub fn set_bounds(&mut self, v: VarId, lo: f64, hi: f64) -> LpResult<()> {
        if lo.is_nan() || hi.is_nan() {
            return Err(LpError::NotFinite(format!("bounds lo={lo} hi={hi}")));
        }
        if lo > hi {
            return Err(LpError::EmptyBounds { var: v.0, lo, hi });
        }
        if v.0 >= self.n_vars() {
            return Err(LpError::BadIndex(format!("var {}", v.0)));
        }
        self.lo[v.0] = lo;
        self.hi[v.0] = hi;
        Ok(())
    }

    /// Returns the bounds of a variable.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        (self.lo[v.0], self.hi[v.0])
    }

    /// Returns the activity range `[rlo, rhi]` of row `i`.
    pub fn row_bounds(&self, i: usize) -> (f64, f64) {
        (self.row_lo[i], self.row_hi[i])
    }

    /// Adds a constant to the reported objective value (useful when a model
    /// layer eliminates fixed variables). Rejects NaN/infinite offsets, which
    /// would silently poison every reported objective downstream.
    pub fn add_obj_offset(&mut self, c: f64) -> LpResult<()> {
        if !c.is_finite() {
            return Err(LpError::NotFinite(format!("objective offset {c}")));
        }
        self.obj_offset += c;
        Ok(())
    }

    /// Adds a row `sense`-related to `rhs` with the given coefficients.
    pub fn add_row<I>(&mut self, sense: RowSense, rhs: f64, coeffs: I) -> LpResult<RowId>
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        let (lo, hi) = match sense {
            RowSense::Le => (NEG_INF, rhs),
            RowSense::Eq => (rhs, rhs),
            RowSense::Ge => (rhs, INF),
        };
        self.add_range_row(lo, hi, coeffs)
    }

    /// Adds a row with explicit activity range `rlo <= aᵀx <= rhi`.
    pub fn add_range_row<I>(&mut self, rlo: f64, rhi: f64, coeffs: I) -> LpResult<RowId>
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        if rlo.is_nan() || rhi.is_nan() {
            return Err(LpError::NotFinite(format!("row range [{rlo}, {rhi}]")));
        }
        if rlo > rhi {
            return Err(LpError::EmptyRowRange {
                row: self.row_lo.len(),
                lo: rlo,
                hi: rhi,
            });
        }
        let r = self.row_lo.len();
        for (v, c) in coeffs {
            if v.0 >= self.n_vars() {
                return Err(LpError::BadIndex(format!("var {} in row {r}", v.0)));
            }
            if !c.is_finite() {
                return Err(LpError::NotFinite(format!("coef {c} in row {r}")));
            }
            if c != 0.0 {
                self.triplets.push((r, v.0, c));
            }
        }
        self.row_lo.push(rlo);
        self.row_hi.push(rhi);
        Ok(RowId(r))
    }

    /// Read-only view of the constraint matrix as `(row, col, value)`
    /// triplets, in insertion order.
    pub fn triplets(&self) -> &[(usize, usize, f64)] {
        &self.triplets
    }

    /// Objective coefficient of a variable.
    pub fn obj_coef(&self, v: VarId) -> f64 {
        self.obj[v.0]
    }

    /// Constant offset added to reported objective values.
    pub fn obj_offset(&self) -> f64 {
        self.obj_offset
    }

    /// Re-checks every invariant the incremental builder enforces, in one
    /// sweep. The builder API cannot produce a problem that fails this, but
    /// problems deserialized or assembled by other layers can; call this
    /// before handing such a problem to the solver.
    pub fn validate(&self) -> LpResult<()> {
        for (j, ((&lo, &hi), &c)) in self.lo.iter().zip(&self.hi).zip(&self.obj).enumerate() {
            if lo.is_nan() || hi.is_nan() || !c.is_finite() {
                return Err(LpError::NotFinite(format!(
                    "var {j}: lo={lo}, hi={hi}, obj={c}"
                )));
            }
            if lo > hi {
                return Err(LpError::EmptyBounds { var: j, lo, hi });
            }
        }
        for (i, (&lo, &hi)) in self.row_lo.iter().zip(&self.row_hi).enumerate() {
            if lo.is_nan() || hi.is_nan() {
                return Err(LpError::NotFinite(format!("row {i} range [{lo}, {hi}]")));
            }
            if lo > hi {
                return Err(LpError::EmptyRowRange { row: i, lo, hi });
            }
        }
        for &(r, c, v) in &self.triplets {
            if r >= self.n_rows() || c >= self.n_vars() {
                return Err(LpError::BadIndex(format!("triplet ({r}, {c})")));
            }
            if !v.is_finite() {
                return Err(LpError::NotFinite(format!("coef {v} at ({r}, {c})")));
            }
        }
        if !self.obj_offset.is_finite() {
            return Err(LpError::NotFinite(format!(
                "objective offset {}",
                self.obj_offset
            )));
        }
        Ok(())
    }

    /// Builds the column-wise constraint matrix (variables only; the solver
    /// appends logical columns itself).
    pub(crate) fn build_matrix(&self) -> SparseMat {
        let m = self.n_rows();
        let n = self.n_vars();
        // Bucket triplets per column.
        let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(r, c, v) in &self.triplets {
            per_col[c].push((r, v));
        }
        let mut mat = SparseMat::new(m);
        for col in per_col {
            mat.push_col(col);
        }
        mat
    }

    /// Evaluates the objective `cᵀx + offset` for a full-length primal point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_vars());
        self.obj
            .iter()
            .zip(x.iter())
            .map(|(c, v)| c * v)
            .sum::<f64>()
            + self.obj_offset
    }

    /// Computes each row's activity `a_iᵀ x`.
    pub fn row_activity(&self, x: &[f64]) -> Vec<f64> {
        let mut act = vec![0.0; self.n_rows()];
        for &(r, c, v) in &self.triplets {
            act[r] += v * x[c];
        }
        act
    }

    /// Maximum violation of variable bounds and row ranges at point `x`.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut viol: f64 = 0.0;
        for (j, &xj) in x.iter().enumerate().take(self.n_vars()) {
            viol = viol.max(self.lo[j] - xj).max(xj - self.hi[j]);
        }
        let act = self.row_activity(x);
        for (i, &ai) in act.iter().enumerate() {
            viol = viol.max(self.row_lo[i] - ai).max(ai - self.row_hi[i]);
        }
        viol.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 10.0, 1.0).unwrap();
        let y = p.add_var(NEG_INF, INF, -2.0).unwrap();
        p.add_row(RowSense::Le, 5.0, [(x, 1.0), (y, 2.0)]).unwrap();
        p.add_row(RowSense::Eq, 1.0, [(x, 1.0), (y, -1.0)]).unwrap();
        assert_eq!(p.n_vars(), 2);
        assert_eq!(p.n_rows(), 2);
        assert_eq!(p.objective_value(&[3.0, 1.0]), 1.0);
        assert_eq!(p.row_activity(&[3.0, 1.0]), vec![5.0, 2.0]);
    }

    #[test]
    fn empty_bounds_rejected() {
        let mut p = LpProblem::new();
        assert!(matches!(
            p.add_var(2.0, 1.0, 0.0),
            Err(LpError::EmptyBounds { .. })
        ));
    }

    #[test]
    fn nan_rejected() {
        let mut p = LpProblem::new();
        assert!(p.add_var(f64::NAN, 1.0, 0.0).is_err());
        let x = p.add_var(0.0, 1.0, 0.0).unwrap();
        assert!(p.add_row(RowSense::Le, f64::NAN, [(x, 1.0)]).is_err());
    }

    #[test]
    fn empty_row_range_and_offset_rejected() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 0.0).unwrap();
        assert!(matches!(
            p.add_range_row(2.0, 1.0, [(x, 1.0)]),
            Err(LpError::EmptyRowRange { row: 0, .. })
        ));
        assert!(p.add_obj_offset(f64::NAN).is_err());
        p.add_obj_offset(1.5).unwrap();
        assert_eq!(p.obj_offset(), 1.5);
    }

    #[test]
    fn validate_catches_post_hoc_corruption() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 1.0).unwrap();
        p.add_row(RowSense::Le, 5.0, [(x, 2.0)]).unwrap();
        assert!(p.validate().is_ok());
        p.triplets.push((7, 0, 1.0)); // out-of-range row index
        assert!(matches!(p.validate(), Err(LpError::BadIndex(_))));
    }

    #[test]
    fn violation_measures_bounds_and_rows() {
        let mut p = LpProblem::new();
        let x = p.add_var(0.0, 1.0, 0.0).unwrap();
        p.add_row(RowSense::Ge, 3.0, [(x, 1.0)]).unwrap();
        assert!((p.max_violation(&[2.0]) - 1.0).abs() < 1e-12);
        assert!((p.max_violation(&[0.5]) - 2.5).abs() < 1e-12);
    }
}
