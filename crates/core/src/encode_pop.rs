//! Encoding of POP (Eq. 6, §3.2) with *symbolic* demands.
//!
//! Each partition instantiation is deterministic once its random
//! assignment is drawn, so POP becomes a family of independent inner LPs:
//! one per `(instantiation, partition)` with the partition's demand subset
//! and `1/c` of every edge capacity. All of them are KKT-rewritten (the
//! heuristic value carries a negative sign in Eq. 1).
//!
//! The random heuristic value is summarized per §3.2 either by the
//! **empirical average** over the instantiations or by a **tail order
//! statistic**, computed by pushing the per-instantiation totals through a
//! Batcher sorting network ("bubble up the worst outcomes").

use crate::CoreResult;
use metaopt_model::{kkt, sortnet, LinExpr, Model, ObjSense, VarRef};
use metaopt_te::{flow::feasible_flow_inner, pop::Partition, TeInstance};

/// How to collapse POP's random value into a deterministic objective term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopMode {
    /// Empirical mean over the instantiations (`E(Heuristic(I))`).
    Average,
    /// The `rank`-th *smallest* per-instantiation value (rank 0 = the very
    /// worst outcome for the heuristic), via a sorting network.
    TailWorst {
        /// Order-statistic index (0 = minimum).
        rank: usize,
    },
}

/// Artifacts of the POP encoding.
#[derive(Debug, Clone)]
pub struct PopEncoded {
    /// Total-flow expression per instantiation.
    pub per_instance: Vec<LinExpr>,
    /// The deterministic heuristic-value expression used in the objective.
    pub heuristic_value: LinExpr,
}

/// Appends the POP follower(s) for symbolic demands `d` onto `model`.
pub fn encode_pop(
    model: &mut Model,
    inst: &TeInstance,
    d: &[VarRef],
    partitions: &[Partition],
    mode: PopMode,
    dual_bound: f64,
) -> CoreResult<PopEncoded> {
    assert_eq!(d.len(), inst.n_pairs());
    assert!(!partitions.is_empty(), "POP needs at least one instantiation");
    let mut per_instance = Vec::with_capacity(partitions.len());

    for (r, part) in partitions.iter().enumerate() {
        assert_eq!(part.assignment.len(), inst.n_pairs());
        let factor = 1.0 / part.n_parts as f64;
        let mut instance_total = LinExpr::zero();
        for c in 0..part.n_parts {
            let members = part.members(c);
            if members.is_empty() {
                continue;
            }
            let sub = inst.restrict(&members, factor);
            let d_exprs: Vec<LinExpr> =
                members.iter().map(|&k| LinExpr::from(d[k])).collect();
            let (mut inner, flows) =
                feasible_flow_inner(model, &format!("pop[{r}][{c}]"), &sub, &d_exprs)?;
            let total = flows.total_flow();
            inner.set_objective(ObjSense::Max, total.clone());
            kkt::append_kkt(model, &inner, dual_bound)?;
            instance_total += total;
        }
        per_instance.push(instance_total);
    }

    let heuristic_value = match mode {
        PopMode::Average => {
            let w = 1.0 / per_instance.len() as f64;
            let mut avg = LinExpr::zero();
            for e in &per_instance {
                avg += e.scaled(w);
            }
            avg
        }
        PopMode::TailWorst { rank } => {
            if rank >= per_instance.len() {
                return Err(crate::CoreError::Config(format!(
                    "tail rank {rank} >= {} instantiations",
                    per_instance.len()
                )));
            }
            // Values are bounded by the total (unsplit) capacity.
            let vmax = inst.topo.total_capacity();
            let sorted = sortnet::sort_ascending(
                model,
                "pop::tail",
                per_instance.clone(),
                0.0,
                vmax,
            )?;
            sorted[rank].clone()
        }
    };

    Ok(PopEncoded {
        per_instance,
        heuristic_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaopt_te::pop::random_partitions;
    use metaopt_topology::synth::line;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n_inst: usize) -> (TeInstance, Model, Vec<VarRef>, Vec<Partition>) {
        let inst = TeInstance::all_pairs(line(3, 10.0), 1).unwrap();
        let mut m = Model::new();
        let d: Vec<VarRef> = (0..inst.n_pairs())
            .map(|k| m.add_var(format!("d{k}"), 0.0, 10.0).unwrap())
            .collect();
        let mut rng = StdRng::seed_from_u64(3);
        let parts = random_partitions(inst.n_pairs(), 2, n_inst, &mut rng);
        (inst, m, d, parts)
    }

    #[test]
    fn average_mode_structure() {
        let (inst, mut m, d, parts) = setup(3);
        let enc = encode_pop(&mut m, &inst, &d, &parts, PopMode::Average, 1e4).unwrap();
        assert_eq!(enc.per_instance.len(), 3);
        // Average has terms from every instantiation's flows.
        assert!(enc.heuristic_value.n_terms() > 0);
        assert!(m.n_complementarities() > 0);
        let _ = inst;
    }

    #[test]
    fn tail_mode_adds_sorting_binaries() {
        let (inst, mut m, d, parts) = setup(3);
        let before_bin = 0;
        let enc =
            encode_pop(&mut m, &inst, &d, &parts, PopMode::TailWorst { rank: 0 }, 1e4).unwrap();
        let binaries = (0..m.n_vars())
            .filter(|&i| m.var_kind(VarRef(i)) == metaopt_model::VarKind::Binary)
            .count();
        assert!(binaries > before_bin, "sorting network must add binaries");
        assert_eq!(enc.heuristic_value.n_terms(), 1); // one sorted output wire
        let _ = inst;
    }

    #[test]
    fn tail_rank_validated() {
        let (inst, mut m, d, parts) = setup(2);
        assert!(
            encode_pop(&mut m, &inst, &d, &parts, PopMode::TailWorst { rank: 5 }, 1e4).is_err()
        );
        let _ = inst;
    }
}
