//@ rel: crates/server/src/api.rs
//@ expect: AN104 4:10
fn handle_async() {
    std::thread::spawn(|| {
        let _ = 1 + 1;
    });
}
